// Package fts implements the full-text MATCH support MicroNN gets from
// SQLite's FTS5 in the paper (§3.5): an inverted token index over a text
// attribute, document-frequency statistics for selectivity estimation, and
// conjunctive MATCH evaluation. The Big-ANN filtered-search benchmark
// (Figure 7) stores each vector's tag bag as a whitespace-separated string
// indexed through this package.
package fts

import (
	"errors"
	"sort"
	"strings"

	"micronn/internal/btree"
	"micronn/internal/reldb"
	"micronn/internal/storage"
	"micronn/internal/token"
)

// docCountKey is the reserved stats key holding the total document count.
// Tokens are lowercase alphanumeric runs, so "#docs" can never collide.
const docCountKey = "#docs"

// tokenLenKey is the reserved stats key holding the summed token length of
// every indexed document (Σ doclen), maintained alongside the per-doc
// length table so the BM25 average document length is O(1). Same
// no-collision argument as docCountKey.
const tokenLenKey = "#len"

// Tokenize lowercases s and splits it into maximal letter/digit runs. It is
// the shared tokenizer from internal/token, re-exported so existing callers
// keep one import.
func Tokenize(s string) []string { return token.Tokenize(s) }

// UniqueTokens returns the deduplicated, sorted token set of s.
func UniqueTokens(s string) []string { return token.Unique(s) }

// Match reports whether doc contains every token of query (the conjunctive
// MATCH semantics used by hybrid post-filtering).
func Match(doc, query string) bool { return token.Match(doc, query) }

// Index is an inverted token index over int64 document ids.
type Index struct {
	postings *reldb.Table // (token TEXT, doc INTEGER) -> ()
	stats    *reldb.Table // (token TEXT) -> (count INTEGER)
	// doclen records each indexed document's unique-token count. It doubles
	// as the doc-existence record: a document is "in the index" exactly when
	// it has a doclen row, which is what makes the #docs stat drift-free
	// under duplicate Add and spurious Remove. Nil on indexes created before
	// the table existed (legacy stores keep the old approximate accounting).
	doclen *reldb.Table // (doc INTEGER) -> (len INTEGER)
}

func tableNames(name string) (postings, stats string) {
	return "__fts_" + name + "_postings", "__fts_" + name + "_stats"
}

func doclenTableName(name string) string {
	return "__fts_" + name + "_doclen"
}

// Create creates the index's tables inside wt.
func Create(db *reldb.DB, wt *storage.WriteTxn, name string) (*Index, error) {
	pName, sName := tableNames(name)
	err := db.CreateTable(wt, &reldb.Schema{
		Name: pName,
		Key: []reldb.Column{
			{Name: "token", Type: reldb.TypeText},
			{Name: "doc", Type: reldb.TypeInt64},
		},
	})
	if err != nil {
		return nil, err
	}
	err = db.CreateTable(wt, &reldb.Schema{
		Name: sName,
		Key:  []reldb.Column{{Name: "token", Type: reldb.TypeText}},
		Cols: []reldb.Column{{Name: "count", Type: reldb.TypeInt64}},
	})
	if err != nil {
		return nil, err
	}
	err = db.CreateTable(wt, &reldb.Schema{
		Name: doclenTableName(name),
		Key:  []reldb.Column{{Name: "doc", Type: reldb.TypeInt64}},
		Cols: []reldb.Column{{Name: "len", Type: reldb.TypeInt64}},
	})
	if err != nil {
		return nil, err
	}
	return Open(db, name)
}

// Open returns a handle to an existing index.
func Open(db *reldb.DB, name string) (*Index, error) {
	pName, sName := tableNames(name)
	postings, err := db.Table(pName)
	if err != nil {
		return nil, err
	}
	stats, err := db.Table(sName)
	if err != nil {
		return nil, err
	}
	ix := &Index{postings: postings, stats: stats}
	if dName := doclenTableName(name); db.HasTable(dName) {
		if ix.doclen, err = db.Table(dName); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Exists reports whether the named index exists in db.
func Exists(db *reldb.DB, name string) bool {
	pName, _ := tableNames(name)
	return db.HasTable(pName)
}

func (ix *Index) bumpStat(wt *storage.WriteTxn, token string, delta int64) error {
	row, err := ix.stats.Get(wt, reldb.S(token))
	var cur int64
	switch {
	case err == nil:
		cur = row[1].Int
	case errors.Is(err, reldb.ErrNotFound):
	default:
		return err
	}
	cur += delta
	if cur <= 0 {
		err := ix.stats.Delete(wt, reldb.S(token))
		if errors.Is(err, reldb.ErrNotFound) {
			return nil
		}
		return err
	}
	return ix.stats.Put(wt, reldb.Row{reldb.S(token), reldb.I(cur)})
}

// Add indexes doc's text under id. Re-adding an id is cumulative (the doc's
// token set becomes the union) and drift-free: a posting already present
// bumps nothing, and #docs only moves when the doc had no doclen row yet.
func (ix *Index) Add(wt *storage.WriteTxn, id int64, text string) error {
	var added int64
	for _, tok := range UniqueTokens(text) {
		_, err := ix.postings.Get(wt, reldb.S(tok), reldb.I(id))
		if err == nil {
			continue // posting already present: stats already count it
		}
		if !errors.Is(err, reldb.ErrNotFound) {
			return err
		}
		if err := ix.postings.Put(wt, reldb.Row{reldb.S(tok), reldb.I(id)}); err != nil {
			return err
		}
		if err := ix.bumpStat(wt, tok, 1); err != nil {
			return err
		}
		added++
	}
	if ix.doclen == nil {
		// Legacy index without the doclen table: keep the historical
		// (unconditional) doc accounting rather than guessing.
		return ix.bumpStat(wt, docCountKey, 1)
	}
	row, err := ix.doclen.Get(wt, reldb.I(id))
	switch {
	case errors.Is(err, reldb.ErrNotFound):
		if err := ix.doclen.Put(wt, reldb.Row{reldb.I(id), reldb.I(added)}); err != nil {
			return err
		}
		if err := ix.bumpStat(wt, docCountKey, 1); err != nil {
			return err
		}
	case err != nil:
		return err
	case added > 0:
		if err := ix.doclen.Put(wt, reldb.Row{reldb.I(id), reldb.I(row[1].Int + added)}); err != nil {
			return err
		}
	}
	if added > 0 {
		return ix.bumpStat(wt, tokenLenKey, added)
	}
	return nil
}

// Remove un-indexes the document (text must be the text supplied to Add).
// Removing tokens the doc never had, or an id that was never added, is a
// no-op on the statistics.
func (ix *Index) Remove(wt *storage.WriteTxn, id int64, text string) error {
	var removed int64
	for _, tok := range UniqueTokens(text) {
		err := ix.postings.Delete(wt, reldb.S(tok), reldb.I(id))
		if errors.Is(err, reldb.ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		if err := ix.bumpStat(wt, tok, -1); err != nil {
			return err
		}
		removed++
	}
	if ix.doclen == nil {
		return ix.bumpStat(wt, docCountKey, -1)
	}
	row, err := ix.doclen.Get(wt, reldb.I(id))
	if errors.Is(err, reldb.ErrNotFound) {
		return nil // never added (or already removed): nothing to account
	}
	if err != nil {
		return err
	}
	if removed > 0 {
		if err := ix.bumpStat(wt, tokenLenKey, -removed); err != nil {
			return err
		}
	}
	if rest := row[1].Int - removed; rest > 0 {
		return ix.doclen.Put(wt, reldb.Row{reldb.I(id), reldb.I(rest)})
	}
	if err := ix.doclen.Delete(wt, reldb.I(id)); err != nil {
		return err
	}
	return ix.bumpStat(wt, docCountKey, -1)
}

// DocFreq returns the number of documents containing token.
func (ix *Index) DocFreq(txn btree.ReadTxn, token string) (int64, error) {
	row, err := ix.stats.Get(txn, reldb.S(strings.ToLower(token)))
	if errors.Is(err, reldb.ErrNotFound) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return row[1].Int, nil
}

// TotalDocs returns the number of indexed documents.
func (ix *Index) TotalDocs(txn btree.ReadTxn) (int64, error) {
	return ix.DocFreq(txn, docCountKey)
}

// TotalTokens returns the summed unique-token length of every indexed
// document (zero on legacy indexes without per-doc lengths).
func (ix *Index) TotalTokens(txn btree.ReadTxn) (int64, error) {
	if ix.doclen == nil {
		return 0, nil
	}
	return ix.DocFreq(txn, tokenLenKey)
}

// HasDocLens reports whether the index persists per-document token lengths
// (false only for indexes created before the doclen table existed).
func (ix *Index) HasDocLens() bool { return ix.doclen != nil }

// DocLen returns document id's unique-token count, 0 if unknown.
func (ix *Index) DocLen(txn btree.ReadTxn, id int64) (int64, error) {
	if ix.doclen == nil {
		return 0, nil
	}
	row, err := ix.doclen.Get(txn, reldb.I(id))
	if errors.Is(err, reldb.ErrNotFound) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return row[1].Int, nil
}

// MatchScan streams, in ascending id order, the documents containing every
// token of query. It drives the scan from the rarest token's posting list
// and probes the others, so cost is proportional to the best selectivity.
// An empty query matches nothing (callers treat it as no constraint).
func (ix *Index) MatchScan(txn btree.ReadTxn, query string, fn func(id int64) error) error {
	tokens := UniqueTokens(query)
	if len(tokens) == 0 {
		return nil
	}
	// Order tokens by ascending document frequency.
	type tokDF struct {
		tok string
		df  int64
	}
	tds := make([]tokDF, len(tokens))
	for i, tok := range tokens {
		df, err := ix.DocFreq(txn, tok)
		if err != nil {
			return err
		}
		if df == 0 {
			return nil // conjunction with an absent token is empty
		}
		tds[i] = tokDF{tok, df}
	}
	sort.Slice(tds, func(i, j int) bool { return tds[i].df < tds[j].df })

	rare := tds[0].tok
	probes := tds[1:]
	return ix.postings.ScanKeys(txn, []reldb.Value{reldb.S(rare)}, func(key reldb.Row) error {
		id := key[1].Int
		for _, p := range probes {
			_, err := ix.postings.Get(txn, reldb.S(p.tok), reldb.I(id))
			if errors.Is(err, reldb.ErrNotFound) {
				return nil // this doc lacks the token; keep scanning
			}
			if err != nil {
				return err
			}
		}
		return fn(id)
	})
}

// ContainsAll reports whether document id carries every token of query,
// answered by direct posting probes — cheaper than refetching and
// re-tokenizing the document text during post-filter partition scans.
func (ix *Index) ContainsAll(txn btree.ReadTxn, id int64, query string) (bool, error) {
	return ix.ContainsAllTokens(txn, id, UniqueTokens(query))
}

// ContainsAllTokens is ContainsAll over a pre-tokenized query: callers that
// post-filter many rows against one query tokenize it once (see
// token.NewMatcher) instead of once per row.
func (ix *Index) ContainsAllTokens(txn btree.ReadTxn, id int64, tokens []string) (bool, error) {
	for _, tok := range tokens {
		_, err := ix.postings.Get(txn, reldb.S(tok), reldb.I(id))
		if errors.Is(err, reldb.ErrNotFound) {
			return false, nil
		}
		if err != nil {
			return false, err
		}
	}
	return true, nil
}

// MatchCount counts the documents matching query.
func (ix *Index) MatchCount(txn btree.ReadTxn, query string) (int64, error) {
	var n int64
	err := ix.MatchScan(txn, query, func(int64) error {
		n++
		return nil
	})
	return n, err
}
