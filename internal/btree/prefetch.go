package btree

import "bytes"

// LeafPages calls emit with the page number of every leaf whose key range
// may intersect [lo, hi] (nil bounds mean unbounded; hi is inclusive),
// without reading the leaves themselves: only interior nodes are visited,
// plus a single leaf peeked per interior parent to detect the leaf level.
// This is the readahead primitive — a partition scan first collects its
// leaf pages here (cheap: interior nodes are few and pool-hot), hands them
// to storage.ReadTxn.Readahead, and only then starts faulting through the
// data. Overflow chains are not enumerated; values large enough to spill
// are rare in vector tables and still benefit from the leaves arriving
// early.
func (t *Tree) LeafPages(txn ReadTxn, lo, hi []byte, emit func(uint32)) error {
	return t.leafPages(txn, t.root, lo, hi, emit)
}

func (t *Tree) leafPages(txn ReadTxn, pageNo uint32, lo, hi []byte, emit func(uint32)) error {
	buf, err := txn.Get(pageNo)
	if err != nil {
		return err
	}
	p := page{buf}
	switch p.typ() {
	case pageTypeLeaf:
		emit(pageNo)
		return nil
	case pageTypeInterior:
	default:
		return ErrCorrupt
	}

	// Child i's subtree holds keys in [k_{i-1}, k_i) (k_{-1} = -inf); the
	// right pointer holds keys >= the last separator. Keep a child when
	// that range overlaps [lo, hi].
	n := p.nCells()
	var kids []uint32
	var prev []byte
	for i := 0; i < n; i++ {
		k, child, err := p.interiorCell(i)
		if err != nil {
			return err
		}
		if child != 0 &&
			(hi == nil || prev == nil || bytes.Compare(prev, hi) <= 0) &&
			(lo == nil || bytes.Compare(k, lo) > 0) {
			kids = append(kids, child)
		}
		prev = k
	}
	if r := p.right(); r != 0 && (hi == nil || prev == nil || bytes.Compare(prev, hi) <= 0) {
		kids = append(kids, r)
	}
	if len(kids) == 0 {
		return nil
	}

	// Peek one child to learn the level's type: when it is the leaf level,
	// every sibling's page number is emitted without reading it — that is
	// the whole point.
	cbuf, err := txn.Get(kids[0])
	if err != nil {
		return err
	}
	if (page{cbuf}).typ() == pageTypeLeaf {
		for _, c := range kids {
			emit(c)
		}
		return nil
	}
	for _, c := range kids {
		if err := t.leafPages(txn, c, lo, hi, emit); err != nil {
			return err
		}
	}
	return nil
}
