// Package btree implements a disk-resident B+tree over the storage layer's
// transactional pages. Every MicroNN table and secondary index is one of
// these trees; the vector table's clustered primary key (partition id,
// vector id) is what gives IVF partitions their on-disk locality — a
// partition scan is a single contiguous leaf walk.
//
// Layout. Interior nodes hold separator keys and child pointers; leaves
// hold key/value cells and a right-sibling pointer for range scans. Keys
// and values are arbitrary byte strings ordered by bytes.Compare. Values
// too large to share a page with at least three other cells spill into an
// overflow page chain.
//
// Deletion frees empty pages but does not rebalance underfull nodes; the
// index rebuild path (which rewrites partitions wholesale) reclaims space,
// matching how MicroNN actually maintains its tables.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Txn is the page-level transaction interface the tree runs on. The
// storage package's WriteTxn satisfies it; ReadTxn satisfies ReadTxn below.
type Txn interface {
	ReadTxn
	GetMut(pageNo uint32) ([]byte, error)
	Allocate() (uint32, []byte, error)
	Free(pageNo uint32) error
}

// ReadTxn is the read-only subset used by lookups and cursors.
type ReadTxn interface {
	Get(pageNo uint32) ([]byte, error)
}

// Page layout constants.
const (
	pageTypeLeaf     = 1
	pageTypeInterior = 2
	pageTypeOverflow = 3

	// Common header: type(1) + ncells(2) + right pointer(4) + cell data
	// start offset(2) + prev pointer(4). For leaves the right pointer is
	// the next sibling and prev the previous sibling (leaves form a
	// doubly-linked chain so emptied leaves can be unlinked); for
	// interior nodes right is the rightmost child and prev is unused.
	hdrType      = 0
	hdrNCells    = 1
	hdrRight     = 3
	hdrDataStart = 7
	hdrPrev      = 9
	hdrEnd       = 13

	slotSize = 2 // per-cell offset in the slot array

	// Cell flags.
	cellOverflow = 1
)

var (
	// ErrNotFound is returned by Get and Delete when the key is absent.
	ErrNotFound = errors.New("btree: key not found")
	// ErrCorrupt indicates an invalid on-page structure.
	ErrCorrupt = errors.New("btree: corrupt page")
)

// Tree is a handle to a B+tree rooted at Root. Trees are stateless: all
// data lives in pages, so a Tree can be freely recreated from its root.
type Tree struct {
	root     uint32
	pageSize int
}

// New creates an empty tree: it allocates a root leaf and returns the tree.
func New(txn Txn, pageSize int) (*Tree, error) {
	pageNo, buf, err := txn.Allocate()
	if err != nil {
		return nil, err
	}
	initPage(buf, pageTypeLeaf)
	return &Tree{root: pageNo, pageSize: pageSize}, nil
}

// Load returns a handle to an existing tree rooted at root.
func Load(root uint32, pageSize int) *Tree {
	return &Tree{root: root, pageSize: pageSize}
}

// Root returns the tree's root page number. The root page never changes
// after creation (splits grow the tree by moving the old root's content),
// so handles stay valid across mutations.
func (t *Tree) Root() uint32 { return t.root }

func initPage(buf []byte, typ byte) {
	for i := range buf[:hdrEnd] {
		buf[i] = 0
	}
	buf[hdrType] = typ
	binary.LittleEndian.PutUint16(buf[hdrNCells:], 0)
	binary.LittleEndian.PutUint32(buf[hdrRight:], 0)
	binary.LittleEndian.PutUint16(buf[hdrDataStart:], uint16(len(buf)))
}

// --- page accessors ---

type page struct {
	buf []byte
}

func (p page) typ() byte      { return p.buf[hdrType] }
func (p page) nCells() int    { return int(binary.LittleEndian.Uint16(p.buf[hdrNCells:])) }
func (p page) right() uint32  { return binary.LittleEndian.Uint32(p.buf[hdrRight:]) }
func (p page) dataStart() int { return int(binary.LittleEndian.Uint16(p.buf[hdrDataStart:])) }
func (p page) prev() uint32   { return binary.LittleEndian.Uint32(p.buf[hdrPrev:]) }

func (p page) setNCells(n int)    { binary.LittleEndian.PutUint16(p.buf[hdrNCells:], uint16(n)) }
func (p page) setRight(pg uint32) { binary.LittleEndian.PutUint32(p.buf[hdrRight:], pg) }
func (p page) setDataStart(v int) { binary.LittleEndian.PutUint16(p.buf[hdrDataStart:], uint16(v)) }
func (p page) setPrev(pg uint32)  { binary.LittleEndian.PutUint32(p.buf[hdrPrev:], pg) }

func (p page) slotOff(i int) int { return hdrEnd + i*slotSize }

func (p page) cellOffset(i int) int {
	return int(binary.LittleEndian.Uint16(p.buf[p.slotOff(i):]))
}

func (p page) setCellOffset(i, off int) {
	binary.LittleEndian.PutUint16(p.buf[p.slotOff(i):], uint16(off))
}

// freeSpace returns contiguous free bytes between slot array and cell data.
func (p page) freeSpace() int {
	return p.dataStart() - (hdrEnd + p.nCells()*slotSize)
}

// Leaf cell: flags(1) keyLen(2) key... then either
//   - inline: valLen(4) value...
//   - overflow (flags&cellOverflow): totalLen(4) firstOverflowPage(4)
//
// Interior cell: keyLen(2) key... child(4); child subtree holds keys < key
// (strictly), with page.right() holding keys >= the last separator.

func leafCellSize(keyLen, valLen int, overflow bool) int {
	if overflow {
		return 1 + 2 + keyLen + 4 + 4
	}
	return 1 + 2 + keyLen + 4 + valLen
}

func interiorCellSize(keyLen int) int { return 2 + keyLen + 4 }

// parseLeafCell returns the key, and either the inline value or the
// overflow descriptor.
func (p page) leafCell(i int) (key []byte, val []byte, ovfPage uint32, totalLen uint32, err error) {
	off := p.cellOffset(i)
	b := p.buf
	if off+3 > len(b) {
		return nil, nil, 0, 0, ErrCorrupt
	}
	flags := b[off]
	klen := int(binary.LittleEndian.Uint16(b[off+1:]))
	ko := off + 3
	if ko+klen+4 > len(b) {
		return nil, nil, 0, 0, ErrCorrupt
	}
	key = b[ko : ko+klen]
	if flags&cellOverflow != 0 {
		totalLen = binary.LittleEndian.Uint32(b[ko+klen:])
		ovfPage = binary.LittleEndian.Uint32(b[ko+klen+4:])
		return key, nil, ovfPage, totalLen, nil
	}
	vlen := int(binary.LittleEndian.Uint32(b[ko+klen:]))
	vo := ko + klen + 4
	if vo+vlen > len(b) {
		return nil, nil, 0, 0, ErrCorrupt
	}
	return key, b[vo : vo+vlen], 0, 0, nil
}

func (p page) interiorCell(i int) (key []byte, child uint32, err error) {
	off := p.cellOffset(i)
	b := p.buf
	if off+2 > len(b) {
		return nil, 0, ErrCorrupt
	}
	klen := int(binary.LittleEndian.Uint16(b[off:]))
	ko := off + 2
	if ko+klen+4 > len(b) {
		return nil, 0, ErrCorrupt
	}
	return b[ko : ko+klen], binary.LittleEndian.Uint32(b[ko+klen:]), nil
}

// leafKey returns only the key of cell i (both node types share the layout
// offset for keys only through these helpers).
func (p page) key(i int) ([]byte, error) {
	if p.typ() == pageTypeLeaf {
		k, _, _, _, err := p.leafCell(i)
		return k, err
	}
	k, _, err := p.interiorCell(i)
	return k, err
}

// search finds the first cell index whose key is >= key. Returns (idx,
// found) where found means an exact match at idx.
func (p page) search(key []byte) (int, bool, error) {
	lo, hi := 0, p.nCells()
	for lo < hi {
		mid := (lo + hi) / 2
		k, err := p.key(mid)
		if err != nil {
			return 0, false, err
		}
		switch bytes.Compare(k, key) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true, nil
		case 1:
			hi = mid
		}
	}
	return lo, false, nil
}

// insertCell writes raw cell bytes at slot index i. Caller must have
// verified free space.
func (p page) insertCell(i int, cell []byte) {
	n := p.nCells()
	newStart := p.dataStart() - len(cell)
	copy(p.buf[newStart:], cell)
	// Shift slots [i, n) right by one.
	copy(p.buf[p.slotOff(i+1):p.slotOff(n+1)], p.buf[p.slotOff(i):p.slotOff(n)])
	p.setCellOffset(i, newStart)
	p.setNCells(n + 1)
	p.setDataStart(newStart)
}

// removeCell deletes slot i. Cell bytes become dead space reclaimed by
// compaction.
func (p page) removeCell(i int) {
	n := p.nCells()
	copy(p.buf[p.slotOff(i):p.slotOff(n-1)], p.buf[p.slotOff(i+1):p.slotOff(n)])
	p.setNCells(n - 1)
}

// cellBytes returns the raw encoded bytes of cell i.
func (p page) cellBytes(i int) ([]byte, error) {
	off := p.cellOffset(i)
	b := p.buf
	var size int
	if p.typ() == pageTypeLeaf {
		flags := b[off]
		klen := int(binary.LittleEndian.Uint16(b[off+1:]))
		if flags&cellOverflow != 0 {
			size = leafCellSize(klen, 0, true)
		} else {
			vlen := int(binary.LittleEndian.Uint32(b[off+3+klen:]))
			size = leafCellSize(klen, vlen, false)
		}
	} else {
		klen := int(binary.LittleEndian.Uint16(b[off:]))
		size = interiorCellSize(klen)
	}
	if off+size > len(b) {
		return nil, ErrCorrupt
	}
	return b[off : off+size], nil
}

// compact rewrites the page so all free space is contiguous.
func (p page) compact(pageSize int) error {
	n := p.nCells()
	cells := make([][]byte, n)
	for i := 0; i < n; i++ {
		cb, err := p.cellBytes(i)
		if err != nil {
			return err
		}
		c := make([]byte, len(cb))
		copy(c, cb)
		cells[i] = c
	}
	dataStart := pageSize
	for i := n - 1; i >= 0; i-- {
		dataStart -= len(cells[i])
		copy(p.buf[dataStart:], cells[i])
		p.setCellOffset(i, dataStart)
	}
	p.setDataStart(dataStart)
	return nil
}

// usedBytes is the total cell payload bytes (excluding slots/header).
func (p page) usedBytes() (int, error) {
	total := 0
	for i := 0; i < p.nCells(); i++ {
		cb, err := p.cellBytes(i)
		if err != nil {
			return 0, err
		}
		total += len(cb)
	}
	return total, nil
}

func encodeLeafCell(dst []byte, key, val []byte, ovfPage uint32, totalLen uint32, overflow bool) []byte {
	if overflow {
		dst = append(dst, cellOverflow)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(key)))
	dst = append(dst, key...)
	if overflow {
		dst = binary.LittleEndian.AppendUint32(dst, totalLen)
		dst = binary.LittleEndian.AppendUint32(dst, ovfPage)
	} else {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(val)))
		dst = append(dst, val...)
	}
	return dst
}

func encodeInteriorCell(dst []byte, key []byte, child uint32) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(key)))
	dst = append(dst, key...)
	dst = binary.LittleEndian.AppendUint32(dst, child)
	return dst
}

// maxInlineValue: values larger than this spill to overflow pages. Chosen
// so a leaf always fits at least 4 cells with maximal keys.
func (t *Tree) maxInlineValue(keyLen int) int {
	quarter := (t.pageSize - hdrEnd) / 4
	m := quarter - leafCellSize(keyLen, 0, false) - slotSize
	if m < 0 {
		m = 0
	}
	return m
}

func (t *Tree) maxKeyLen() int {
	// Keys must allow 4 interior cells per page.
	return (t.pageSize-hdrEnd)/4 - interiorCellSize(0) - slotSize
}

// --- overflow chains ---

// Overflow page: next(4) + dataLen(2) + data.
func (t *Tree) writeOverflow(txn Txn, val []byte) (uint32, error) {
	chunk := t.pageSize - 6
	var first uint32
	var prevBuf []byte
	for off := 0; off < len(val); off += chunk {
		end := off + chunk
		if end > len(val) {
			end = len(val)
		}
		pageNo, buf, err := txn.Allocate()
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint32(buf[0:], 0) // next pointer, fixed up below
		binary.LittleEndian.PutUint16(buf[4:], uint16(end-off))
		copy(buf[6:], val[off:end])
		if prevBuf != nil {
			binary.LittleEndian.PutUint32(prevBuf[0:], pageNo)
		} else {
			first = pageNo
		}
		prevBuf = buf
	}
	return first, nil
}

func readOverflow(txn ReadTxn, first uint32, totalLen uint32) ([]byte, error) {
	out := make([]byte, 0, totalLen)
	pageNo := first
	for pageNo != 0 {
		buf, err := txn.Get(pageNo)
		if err != nil {
			return nil, err
		}
		next := binary.LittleEndian.Uint32(buf[0:])
		n := int(binary.LittleEndian.Uint16(buf[4:]))
		if 6+n > len(buf) {
			return nil, ErrCorrupt
		}
		out = append(out, buf[6:6+n]...)
		pageNo = next
	}
	if uint32(len(out)) != totalLen {
		return nil, fmt.Errorf("%w: overflow chain length %d, want %d", ErrCorrupt, len(out), totalLen)
	}
	return out, nil
}

func (t *Tree) freeOverflow(txn Txn, first uint32) error {
	pageNo := first
	for pageNo != 0 {
		buf, err := txn.Get(pageNo)
		if err != nil {
			return err
		}
		next := binary.LittleEndian.Uint32(buf[0:])
		if err := txn.Free(pageNo); err != nil {
			return err
		}
		pageNo = next
	}
	return nil
}
