package btree

import "fmt"

// Cursor iterates leaf cells in ascending key order by following leaf
// sibling pointers. A cursor is valid for the lifetime of the transaction
// it was opened in; mutating the tree through the same write transaction
// while a cursor is open invalidates it.
type Cursor struct {
	t      *Tree
	txn    ReadTxn
	pageNo uint32
	page   page
	idx    int
	valid  bool
}

// First positions a cursor at the smallest key.
func (t *Tree) First(txn ReadTxn) (*Cursor, error) {
	c := &Cursor{t: t, txn: txn}
	pageNo := t.root
	for {
		buf, err := txn.Get(pageNo)
		if err != nil {
			return nil, err
		}
		p := page{buf: buf}
		switch p.typ() {
		case pageTypeLeaf:
			c.pageNo, c.page, c.idx = pageNo, p, 0
			c.valid = true
			return c, c.skipEmpty()
		case pageTypeInterior:
			if p.nCells() == 0 {
				pageNo = p.right()
				continue
			}
			_, child, err := p.interiorCell(0)
			if err != nil {
				return nil, err
			}
			pageNo = child
		default:
			return nil, fmt.Errorf("%w: page %d type %d", ErrCorrupt, pageNo, p.typ())
		}
	}
}

// Seek positions a cursor at the first key >= key.
func (t *Tree) Seek(txn ReadTxn, key []byte) (*Cursor, error) {
	c := &Cursor{t: t, txn: txn}
	pageNo := t.root
	for {
		buf, err := txn.Get(pageNo)
		if err != nil {
			return nil, err
		}
		p := page{buf: buf}
		switch p.typ() {
		case pageTypeLeaf:
			idx, _, err := p.search(key)
			if err != nil {
				return nil, err
			}
			c.pageNo, c.page, c.idx = pageNo, p, idx
			c.valid = true
			return c, c.skipEmpty()
		case pageTypeInterior:
			child, _, err := p.childFor(key)
			if err != nil {
				return nil, err
			}
			pageNo = child
		default:
			return nil, fmt.Errorf("%w: page %d type %d", ErrCorrupt, pageNo, p.typ())
		}
	}
}

// skipEmpty advances across exhausted or empty leaves.
func (c *Cursor) skipEmpty() error {
	for c.valid && c.idx >= c.page.nCells() {
		next := c.page.right()
		if next == 0 {
			c.valid = false
			return nil
		}
		buf, err := c.txn.Get(next)
		if err != nil {
			return err
		}
		c.pageNo = next
		c.page = page{buf: buf}
		c.idx = 0
	}
	return nil
}

// Valid reports whether the cursor points at a cell.
func (c *Cursor) Valid() bool { return c.valid }

// Key returns the current key. The slice aliases page memory; copy it if it
// must outlive the cursor position.
func (c *Cursor) Key() ([]byte, error) {
	if !c.valid {
		return nil, fmt.Errorf("btree: cursor not valid")
	}
	return c.page.key(c.idx)
}

// Value returns the current value. Inline values alias page memory;
// overflow values are freshly allocated.
func (c *Cursor) Value() ([]byte, error) {
	if !c.valid {
		return nil, fmt.Errorf("btree: cursor not valid")
	}
	_, val, ovf, totalLen, err := c.page.leafCell(c.idx)
	if err != nil {
		return nil, err
	}
	if ovf != 0 {
		return readOverflow(c.txn, ovf, totalLen)
	}
	return val, nil
}

// Next advances to the following key.
func (c *Cursor) Next() error {
	if !c.valid {
		return nil
	}
	c.idx++
	return c.skipEmpty()
}
