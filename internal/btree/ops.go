package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Get returns the value stored under key, or ErrNotFound. Inline values
// alias page memory and must not be retained across transaction boundaries;
// overflow values are freshly allocated.
func (t *Tree) Get(txn ReadTxn, key []byte) ([]byte, error) {
	pageNo := t.root
	for {
		buf, err := txn.Get(pageNo)
		if err != nil {
			return nil, err
		}
		p := page{buf: buf}
		switch p.typ() {
		case pageTypeLeaf:
			idx, found, err := p.search(key)
			if err != nil {
				return nil, err
			}
			if !found {
				return nil, ErrNotFound
			}
			_, val, ovf, totalLen, err := p.leafCell(idx)
			if err != nil {
				return nil, err
			}
			if ovf != 0 {
				return readOverflow(txn, ovf, totalLen)
			}
			return val, nil
		case pageTypeInterior:
			child, _, err := p.childFor(key)
			if err != nil {
				return nil, err
			}
			pageNo = child
		default:
			return nil, fmt.Errorf("%w: page %d type %d", ErrCorrupt, pageNo, p.typ())
		}
	}
}

// Has reports whether key exists.
func (t *Tree) Has(txn ReadTxn, key []byte) (bool, error) {
	_, err := t.Get(txn, key)
	if err == ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// childFor returns the child page that covers key and the slot index of the
// separator cell routing to it (-1 when routed through the right pointer).
func (p page) childFor(key []byte) (uint32, int, error) {
	idx, found, err := p.search(key)
	if err != nil {
		return 0, 0, err
	}
	if found {
		idx++ // keys equal to a separator live in the right subtree
	}
	if idx >= p.nCells() {
		return p.right(), -1, nil
	}
	_, child, err := p.interiorCell(idx)
	return child, idx, err
}

// setInteriorChild rewrites the child pointer of interior cell i in place
// (the pointer has a fixed offset inside the cell, so no resize happens).
func (p page) setInteriorChild(i int, child uint32) {
	off := p.cellOffset(i)
	klen := int(binary.LittleEndian.Uint16(p.buf[off:]))
	binary.LittleEndian.PutUint32(p.buf[off+2+klen:], child)
}

// split describes a node split: right is the new sibling holding keys
// >= sepKey.
type split struct {
	sepKey []byte
	right  uint32
}

// Put inserts or replaces key -> val.
func (t *Tree) Put(txn Txn, key, val []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("btree: empty key")
	}
	if len(key) > t.maxKeyLen() {
		return fmt.Errorf("btree: key length %d exceeds max %d", len(key), t.maxKeyLen())
	}
	sp, err := t.insert(txn, t.root, key, val)
	if err != nil {
		return err
	}
	if sp == nil {
		return nil
	}
	// Root split: move the root's identity. The old root content already
	// lives in two pages (root itself kept the left half in insert());
	// here insert() has arranged for the root page to retain the left
	// half, so we grow the tree by replacing the root content with a
	// 2-child interior node.
	rootBuf, err := txn.GetMut(t.root)
	if err != nil {
		return err
	}
	// Copy the (already-split) root content into a fresh left page.
	leftNo, leftBuf, err := txn.Allocate()
	if err != nil {
		return err
	}
	copy(leftBuf, rootBuf)
	// If the moved content is a leaf, its right sibling still records the
	// root page as prev; repoint it at the content's new home.
	moved := page{buf: leftBuf}
	if moved.typ() == pageTypeLeaf {
		if next := moved.right(); next != 0 {
			nextBuf, err := txn.GetMut(next)
			if err != nil {
				return err
			}
			nextPg := page{buf: nextBuf}
			nextPg.setPrev(leftNo)
		}
	}
	initPage(rootBuf, pageTypeInterior)
	root := page{buf: rootBuf}
	cell := encodeInteriorCell(nil, sp.sepKey, leftNo)
	root.insertCell(0, cell)
	root.setRight(sp.right)
	return nil
}

// insert descends to a leaf, inserts, and propagates splits upward.
func (t *Tree) insert(txn Txn, pageNo uint32, key, val []byte) (*split, error) {
	ro, err := txn.Get(pageNo)
	if err != nil {
		return nil, err
	}
	typ := page{buf: ro}.typ()
	switch typ {
	case pageTypeLeaf:
		return t.insertLeaf(txn, pageNo, key, val)
	case pageTypeInterior:
		child, slot, err := page{buf: ro}.childFor(key)
		if err != nil {
			return nil, err
		}
		sp, err := t.insert(txn, child, key, val)
		if err != nil || sp == nil {
			return nil, err
		}
		return t.insertInterior(txn, pageNo, slot, child, sp)
	default:
		return nil, fmt.Errorf("%w: page %d type %d", ErrCorrupt, pageNo, typ)
	}
}

func (t *Tree) insertLeaf(txn Txn, pageNo uint32, key, val []byte) (*split, error) {
	buf, err := txn.GetMut(pageNo)
	if err != nil {
		return nil, err
	}
	p := page{buf: buf}
	idx, found, err := p.search(key)
	if err != nil {
		return nil, err
	}
	if found {
		// Replace: drop the old cell (and its overflow chain) first.
		_, _, ovf, _, err := p.leafCell(idx)
		if err != nil {
			return nil, err
		}
		p.removeCell(idx)
		if ovf != 0 {
			if err := t.freeOverflow(txn, ovf); err != nil {
				return nil, err
			}
			// freeOverflow may have touched other pages; re-fetch ours
			// (GetMut returns the same dirty buffer, this is cheap).
			buf, err = txn.GetMut(pageNo)
			if err != nil {
				return nil, err
			}
			p = page{buf: buf}
		}
	}

	overflow := len(val) > t.maxInlineValue(len(key))
	var cell []byte
	if overflow {
		first, err := t.writeOverflow(txn, val)
		if err != nil {
			return nil, err
		}
		buf, err = txn.GetMut(pageNo) // re-fetch after allocations
		if err != nil {
			return nil, err
		}
		p = page{buf: buf}
		cell = encodeLeafCell(nil, key, nil, first, uint32(len(val)), true)
	} else {
		cell = encodeLeafCell(nil, key, val, 0, 0, false)
	}

	need := len(cell) + slotSize
	if p.freeSpace() < need {
		used, err := p.usedBytes()
		if err != nil {
			return nil, err
		}
		if len(buf)-hdrEnd-p.nCells()*slotSize-used >= need {
			if err := p.compact(t.pageSize); err != nil {
				return nil, err
			}
		}
	}
	if p.freeSpace() >= need {
		idx, _, err = p.search(key) // position may have shifted after replace
		if err != nil {
			return nil, err
		}
		p.insertCell(idx, cell)
		return nil, nil
	}
	return t.splitLeaf(txn, pageNo, p, key, cell)
}

// splitLeaf distributes the page's cells plus the pending cell across the
// page and a new right sibling, balanced by bytes.
func (t *Tree) splitLeaf(txn Txn, pageNo uint32, p page, key []byte, newCell []byte) (*split, error) {
	type kcell struct {
		key  []byte
		cell []byte
	}
	n := p.nCells()
	all := make([]kcell, 0, n+1)
	inserted := false
	for i := 0; i < n; i++ {
		k, err := p.key(i)
		if err != nil {
			return nil, err
		}
		cb, err := p.cellBytes(i)
		if err != nil {
			return nil, err
		}
		if !inserted && bytes.Compare(key, k) < 0 {
			all = append(all, kcell{key: append([]byte(nil), key...), cell: newCell})
			inserted = true
		}
		kk := append([]byte(nil), k...)
		cc := append([]byte(nil), cb...)
		all = append(all, kcell{key: kk, cell: cc})
	}
	if !inserted {
		all = append(all, kcell{key: append([]byte(nil), key...), cell: newCell})
	}

	total := 0
	for _, c := range all {
		total += len(c.cell) + slotSize
	}
	// Find the split point: left takes cells until >= half the bytes.
	splitAt, acc := 0, 0
	for i, c := range all {
		acc += len(c.cell) + slotSize
		if acc >= total/2 {
			splitAt = i + 1
			break
		}
	}
	if splitAt == 0 {
		splitAt = 1
	}
	if splitAt >= len(all) {
		splitAt = len(all) - 1
	}

	rightNo, rightBuf, err := txn.Allocate()
	if err != nil {
		return nil, err
	}
	// Re-fetch left after allocation.
	leftBuf, err := txn.GetMut(pageNo)
	if err != nil {
		return nil, err
	}
	left := page{buf: leftBuf}
	oldNext := left.right()
	oldPrev := left.prev()

	initPage(leftBuf, pageTypeLeaf)
	for i := splitAt - 1; i >= 0; i-- {
		left.insertCell(0, all[i].cell)
	}
	initPage(rightBuf, pageTypeLeaf)
	right := page{buf: rightBuf}
	for i := len(all) - 1; i >= splitAt; i-- {
		right.insertCell(0, all[i].cell)
	}
	left.setRight(rightNo)
	left.setPrev(oldPrev)
	right.setRight(oldNext)
	right.setPrev(pageNo)
	if oldNext != 0 {
		nextBuf, err := txn.GetMut(oldNext)
		if err != nil {
			return nil, err
		}
		page{buf: nextBuf}.setPrev(rightNo)
	}
	return &split{sepKey: all[splitAt].key, right: rightNo}, nil
}

// insertInterior records a child split in the parent: a new separator cell
// (sepKey, oldChild) at the child's slot, with the displaced pointer
// updated to the new right sibling.
func (t *Tree) insertInterior(txn Txn, pageNo uint32, slot int, oldChild uint32, sp *split) (*split, error) {
	buf, err := txn.GetMut(pageNo)
	if err != nil {
		return nil, err
	}
	p := page{buf: buf}
	cell := encodeInteriorCell(nil, sp.sepKey, oldChild)
	need := len(cell) + slotSize
	if p.freeSpace() < need {
		used, err := p.usedBytes()
		if err != nil {
			return nil, err
		}
		if len(buf)-hdrEnd-p.nCells()*slotSize-used >= need {
			if err := p.compact(t.pageSize); err != nil {
				return nil, err
			}
		}
	}
	if p.freeSpace() >= need {
		if slot == -1 {
			p.insertCell(p.nCells(), cell)
			p.setRight(sp.right)
		} else {
			p.insertCell(slot, cell)
			p.setInteriorChild(slot+1, sp.right)
		}
		return nil, nil
	}
	return t.splitInterior(txn, pageNo, p, slot, oldChild, sp)
}

// splitInterior splits a full interior node that must additionally absorb
// the pending separator cell.
func (t *Tree) splitInterior(txn Txn, pageNo uint32, p page, slot int, oldChild uint32, sp *split) (*split, error) {
	type icell struct {
		key   []byte
		child uint32
	}
	n := p.nCells()
	all := make([]icell, 0, n+1)
	for i := 0; i < n; i++ {
		k, child, err := p.interiorCell(i)
		if err != nil {
			return nil, err
		}
		all = append(all, icell{key: append([]byte(nil), k...), child: child})
	}
	rightMost := p.right()
	// Apply the pending insert to the in-memory copy.
	if slot == -1 {
		all = append(all, icell{key: append([]byte(nil), sp.sepKey...), child: oldChild})
		rightMost = sp.right
	} else {
		all = append(all, icell{})
		copy(all[slot+1:], all[slot:])
		all[slot] = icell{key: append([]byte(nil), sp.sepKey...), child: oldChild}
		all[slot+1].child = sp.right
	}

	mid := len(all) / 2
	promoted := all[mid]

	rightNo, rightBuf, err := txn.Allocate()
	if err != nil {
		return nil, err
	}
	leftBuf, err := txn.GetMut(pageNo)
	if err != nil {
		return nil, err
	}
	left := page{buf: leftBuf}

	initPage(leftBuf, pageTypeInterior)
	for i := mid - 1; i >= 0; i-- {
		left.insertCell(0, encodeInteriorCell(nil, all[i].key, all[i].child))
	}
	left.setRight(promoted.child)

	initPage(rightBuf, pageTypeInterior)
	right := page{buf: rightBuf}
	for i := len(all) - 1; i > mid; i-- {
		right.insertCell(0, encodeInteriorCell(nil, all[i].key, all[i].child))
	}
	right.setRight(rightMost)

	return &split{sepKey: promoted.key, right: rightNo}, nil
}

// pathStep records the descent through one interior node: the page and the
// slot routing to the chosen child (-1 = the right pointer).
type pathStep struct {
	pageNo uint32
	slot   int
}

// Delete removes key, returning ErrNotFound if absent. A leaf emptied by
// the deletion is unlinked from the sibling chain, its routing entry is
// removed from the parent, and the freed pages return to the freelist —
// without this, bulk deletions (the rebuild path moves every row) would
// leave long chains of dead leaves that every range scan must traverse.
func (t *Tree) Delete(txn Txn, key []byte) error {
	var path []pathStep
	pageNo := t.root
	for {
		ro, err := txn.Get(pageNo)
		if err != nil {
			return err
		}
		p := page{buf: ro}
		switch p.typ() {
		case pageTypeLeaf:
			idx, found, err := p.search(key)
			if err != nil {
				return err
			}
			if !found {
				return ErrNotFound
			}
			buf, err := txn.GetMut(pageNo)
			if err != nil {
				return err
			}
			mp := page{buf: buf}
			_, _, ovf, _, err := mp.leafCell(idx)
			if err != nil {
				return err
			}
			mp.removeCell(idx)
			if ovf != 0 {
				if err := t.freeOverflow(txn, ovf); err != nil {
					return err
				}
			}
			if mp.nCells() == 0 && pageNo != t.root {
				return t.unlinkEmptyLeaf(txn, pageNo, path)
			}
			return nil
		case pageTypeInterior:
			child, slot, err := p.childFor(key)
			if err != nil {
				return err
			}
			path = append(path, pathStep{pageNo: pageNo, slot: slot})
			pageNo = child
		default:
			return fmt.Errorf("%w: page %d type %d", ErrCorrupt, pageNo, p.typ())
		}
	}
}

// unlinkEmptyLeaf splices an emptied leaf out of the doubly-linked chain,
// frees it, and removes its routing entry from the ancestors.
func (t *Tree) unlinkEmptyLeaf(txn Txn, leafNo uint32, path []pathStep) error {
	leafBuf, err := txn.Get(leafNo)
	if err != nil {
		return err
	}
	leaf := page{buf: leafBuf}
	prevNo, nextNo := leaf.prev(), leaf.right()
	if prevNo != 0 {
		buf, err := txn.GetMut(prevNo)
		if err != nil {
			return err
		}
		page{buf: buf}.setRight(nextNo)
	}
	if nextNo != 0 {
		buf, err := txn.GetMut(nextNo)
		if err != nil {
			return err
		}
		page{buf: buf}.setPrev(prevNo)
	}
	if err := txn.Free(leafNo); err != nil {
		return err
	}
	return t.removeRouting(txn, path)
}

// removeRouting deletes the deepest path step's routing entry and collapses
// ancestors that become childless.
func (t *Tree) removeRouting(txn Txn, path []pathStep) error {
	if len(path) == 0 {
		return nil
	}
	step := path[len(path)-1]
	buf, err := txn.GetMut(step.pageNo)
	if err != nil {
		return err
	}
	p := page{buf: buf}
	n := p.nCells()
	switch {
	case step.slot >= 0 && step.slot < n:
		// The separator cell routes to the dead child; dropping it
		// merges the (empty) key range into the next child.
		p.removeCell(step.slot)
	case step.slot == -1 && n > 0:
		// The dead child was the right pointer: promote the last cell's
		// child and drop that cell.
		_, child, err := p.interiorCell(n - 1)
		if err != nil {
			return err
		}
		p.setRight(child)
		p.removeCell(n - 1)
	default:
		// Interior node with no cells left: it routed everything to the
		// dead child. Collapse it into its parent (or reset the root).
		return t.collapseInterior(txn, step.pageNo, path[:len(path)-1])
	}
	return nil
}

// collapseInterior removes an interior node that lost its last child.
func (t *Tree) collapseInterior(txn Txn, pageNo uint32, path []pathStep) error {
	if pageNo == t.root {
		buf, err := txn.GetMut(pageNo)
		if err != nil {
			return err
		}
		initPage(buf, pageTypeLeaf)
		return nil
	}
	if err := txn.Free(pageNo); err != nil {
		return err
	}
	return t.removeRouting(txn, path)
}

// Drop frees every page of the tree except the root, which is reset to an
// empty leaf. Used when truncating or rebuilding a table.
func (t *Tree) Drop(txn Txn) error {
	if err := t.dropSubtree(txn, t.root, true); err != nil {
		return err
	}
	buf, err := txn.GetMut(t.root)
	if err != nil {
		return err
	}
	initPage(buf, pageTypeLeaf)
	return nil
}

func (t *Tree) dropSubtree(txn Txn, pageNo uint32, isRoot bool) error {
	buf, err := txn.Get(pageNo)
	if err != nil {
		return err
	}
	p := page{buf: buf}
	switch p.typ() {
	case pageTypeLeaf:
		for i := 0; i < p.nCells(); i++ {
			_, _, ovf, _, err := p.leafCell(i)
			if err != nil {
				return err
			}
			if ovf != 0 {
				if err := t.freeOverflow(txn, ovf); err != nil {
					return err
				}
				// Re-fetch: freeing may have invalidated our view.
				buf, err = txn.Get(pageNo)
				if err != nil {
					return err
				}
				p = page{buf: buf}
			}
		}
	case pageTypeInterior:
		children := make([]uint32, 0, p.nCells()+1)
		for i := 0; i < p.nCells(); i++ {
			_, child, err := p.interiorCell(i)
			if err != nil {
				return err
			}
			children = append(children, child)
		}
		if r := p.right(); r != 0 {
			children = append(children, r)
		}
		for _, c := range children {
			if err := t.dropSubtree(txn, c, false); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("%w: page %d type %d", ErrCorrupt, pageNo, p.typ())
	}
	if !isRoot {
		return txn.Free(pageNo)
	}
	return nil
}

// Count walks the tree and returns the number of stored keys.
func (t *Tree) Count(txn ReadTxn) (int, error) {
	n := 0
	c, err := t.First(txn)
	if err != nil {
		return 0, err
	}
	for c.Valid() {
		n++
		if err := c.Next(); err != nil {
			return 0, err
		}
	}
	return n, nil
}
