package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"micronn/internal/storage"
	"micronn/internal/storage/storagetest"
)

func testStore(t *testing.T) *storage.Store {
	t.Helper()
	s, err := storage.Open(filepath.Join(t.TempDir(), "t.db"), storage.Options{
		Sync: storage.SyncOff, CheckpointFrames: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// newTree creates a tree in its own committed transaction and returns it.
func newTree(t *testing.T, s *storage.Store) *Tree {
	t.Helper()
	var tree *Tree
	err := s.Update(func(wt *storage.WriteTxn) error {
		var err error
		tree, err = New(wt, int(s.PageSize()))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func mustPut(t *testing.T, s *storage.Store, tree *Tree, kv map[string]string) {
	t.Helper()
	err := s.Update(func(wt *storage.WriteTxn) error {
		for k, v := range kv {
			if err := tree.Put(wt, []byte(k), []byte(v)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutGet(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	mustPut(t, s, tree, map[string]string{"alpha": "1", "beta": "2", "gamma": "3"})
	err := s.View(func(rt *storage.ReadTxn) error {
		for k, want := range map[string]string{"alpha": "1", "beta": "2", "gamma": "3"} {
			v, err := tree.Get(rt, []byte(k))
			if err != nil {
				return fmt.Errorf("Get(%s): %w", k, err)
			}
			if string(v) != want {
				t.Errorf("Get(%s) = %q, want %q", k, v, want)
			}
		}
		if _, err := tree.Get(rt, []byte("missing")); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(missing) = %v, want ErrNotFound", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReplaceValue(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	mustPut(t, s, tree, map[string]string{"k": "old"})
	mustPut(t, s, tree, map[string]string{"k": "new value, different length"})
	err := s.View(func(rt *storage.ReadTxn) error {
		v, err := tree.Get(rt, []byte("k"))
		if err != nil {
			return err
		}
		if string(v) != "new value, different length" {
			t.Errorf("Get = %q", v)
		}
		n, err := tree.Count(rt)
		if err != nil {
			return err
		}
		if n != 1 {
			t.Errorf("Count = %d, want 1", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	err := s.Update(func(wt *storage.WriteTxn) error {
		return tree.Put(wt, nil, []byte("v"))
	})
	if err == nil {
		t.Error("Put(empty key) should fail")
	}
}

func TestManyKeysSplits(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	const n = 5000
	err := s.Update(func(wt *storage.WriteTxn) error {
		for i := 0; i < n; i++ {
			k := []byte(fmt.Sprintf("key-%06d", i))
			v := []byte(fmt.Sprintf("value-%d", i*i))
			if err := tree.Put(wt, k, v); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.View(func(rt *storage.ReadTxn) error {
		count, err := tree.Count(rt)
		if err != nil {
			return err
		}
		if count != n {
			t.Errorf("Count = %d, want %d", count, n)
		}
		// Spot check lookups.
		for _, i := range []int{0, 1, 999, 2500, n - 1} {
			v, err := tree.Get(rt, []byte(fmt.Sprintf("key-%06d", i)))
			if err != nil {
				return fmt.Errorf("Get %d: %w", i, err)
			}
			if string(v) != fmt.Sprintf("value-%d", i*i) {
				t.Errorf("Get(%d) = %q", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIterationOrder(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	keys := []string{"zebra", "apple", "mango", "banana", "cherry"}
	kv := map[string]string{}
	for _, k := range keys {
		kv[k] = "v-" + k
	}
	mustPut(t, s, tree, kv)
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)

	err := s.View(func(rt *storage.ReadTxn) error {
		c, err := tree.First(rt)
		if err != nil {
			return err
		}
		var got []string
		for c.Valid() {
			k, err := c.Key()
			if err != nil {
				return err
			}
			got = append(got, string(k))
			if err := c.Next(); err != nil {
				return err
			}
		}
		if len(got) != len(sorted) {
			t.Fatalf("iterated %d keys, want %d", len(got), len(sorted))
		}
		for i := range sorted {
			if got[i] != sorted[i] {
				t.Errorf("[%d] = %s, want %s", i, got[i], sorted[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSeek(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	err := s.Update(func(wt *storage.WriteTxn) error {
		for i := 0; i < 100; i += 2 { // even keys only
			if err := tree.Put(wt, []byte(fmt.Sprintf("%03d", i)), []byte("x")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.View(func(rt *storage.ReadTxn) error {
		// Seek to an absent odd key: should land on the next even key.
		c, err := tree.Seek(rt, []byte("051"))
		if err != nil {
			return err
		}
		if !c.Valid() {
			t.Fatal("cursor invalid")
		}
		k, err := c.Key()
		if err != nil {
			return err
		}
		if string(k) != "052" {
			t.Errorf("Seek(051) = %s, want 052", k)
		}
		// Seek to exact key.
		c, err = tree.Seek(rt, []byte("050"))
		if err != nil {
			return err
		}
		k, _ = c.Key()
		if string(k) != "050" {
			t.Errorf("Seek(050) = %s", k)
		}
		// Seek beyond the end.
		c, err = tree.Seek(rt, []byte("999"))
		if err != nil {
			return err
		}
		if c.Valid() {
			k, _ := c.Key()
			t.Errorf("Seek(999) valid at %s, want invalid", k)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	mustPut(t, s, tree, map[string]string{"a": "1", "b": "2", "c": "3"})
	err := s.Update(func(wt *storage.WriteTxn) error {
		if err := tree.Delete(wt, []byte("b")); err != nil {
			return err
		}
		if err := tree.Delete(wt, []byte("nope")); !errors.Is(err, ErrNotFound) {
			t.Errorf("Delete(nope) = %v, want ErrNotFound", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.View(func(rt *storage.ReadTxn) error {
		if _, err := tree.Get(rt, []byte("b")); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(b) after delete = %v", err)
		}
		n, err := tree.Count(rt)
		if err != nil {
			return err
		}
		if n != 2 {
			t.Errorf("Count = %d, want 2", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllThenIterate(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	const n = 1000
	err := s.Update(func(wt *storage.WriteTxn) error {
		for i := 0; i < n; i++ {
			if err := tree.Put(wt, []byte(fmt.Sprintf("%05d", i)), []byte("v")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Update(func(wt *storage.WriteTxn) error {
		for i := 0; i < n; i++ {
			if err := tree.Delete(wt, []byte(fmt.Sprintf("%05d", i))); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.View(func(rt *storage.ReadTxn) error {
		count, err := tree.Count(rt)
		if err != nil {
			return err
		}
		if count != 0 {
			t.Errorf("Count after delete-all = %d", count)
		}
		c, err := tree.First(rt)
		if err != nil {
			return err
		}
		if c.Valid() {
			t.Error("cursor valid on empty tree")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOverflowValues(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	big := bytes.Repeat([]byte("0123456789abcdef"), 2048) // 32 KiB, multi-page
	small := []byte("small")
	err := s.Update(func(wt *storage.WriteTxn) error {
		if err := tree.Put(wt, []byte("big"), big); err != nil {
			return err
		}
		return tree.Put(wt, []byte("small"), small)
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.View(func(rt *storage.ReadTxn) error {
		v, err := tree.Get(rt, []byte("big"))
		if err != nil {
			return err
		}
		if !bytes.Equal(v, big) {
			t.Errorf("overflow value mismatch: len %d want %d", len(v), len(big))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replacing an overflow value must free the old chain.
	err = s.Update(func(wt *storage.WriteTxn) error {
		before := wt.FreePages()
		if err := tree.Put(wt, []byte("big"), []byte("now small")); err != nil {
			return err
		}
		if wt.FreePages() <= before {
			t.Errorf("free pages %d -> %d, expected overflow chain reclaimed", before, wt.FreePages())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.View(func(rt *storage.ReadTxn) error {
		v, err := tree.Get(rt, []byte("big"))
		if err != nil {
			return err
		}
		if string(v) != "now small" {
			t.Errorf("Get = %q", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDropReclaimsPages(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	err := s.Update(func(wt *storage.WriteTxn) error {
		for i := 0; i < 2000; i++ {
			if err := tree.Put(wt, []byte(fmt.Sprintf("%06d", i)), bytes.Repeat([]byte("x"), 64)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Update(func(wt *storage.WriteTxn) error {
		before := wt.FreePages()
		if err := tree.Drop(wt); err != nil {
			return err
		}
		if wt.FreePages() <= before+10 {
			t.Errorf("Drop reclaimed too few pages: %d -> %d", before, wt.FreePages())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.View(func(rt *storage.ReadTxn) error {
		n, err := tree.Count(rt)
		if err != nil {
			return err
		}
		if n != 0 {
			t.Errorf("Count after Drop = %d", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The tree must be reusable after Drop.
	mustPut(t, s, tree, map[string]string{"fresh": "start"})
	err = s.View(func(rt *storage.ReadTxn) error {
		v, err := tree.Get(rt, []byte("fresh"))
		if err != nil {
			return err
		}
		if string(v) != "start" {
			t.Errorf("Get = %q", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandomOperationsMatchReferenceMap(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	ref := map[string]string{}
	rng := rand.New(rand.NewSource(42))

	for round := 0; round < 10; round++ {
		err := s.Update(func(wt *storage.WriteTxn) error {
			for op := 0; op < 500; op++ {
				key := fmt.Sprintf("k%04d", rng.Intn(800))
				switch rng.Intn(3) {
				case 0, 1: // put
					val := fmt.Sprintf("v%d-%d", round, rng.Intn(1_000_000))
					if rng.Intn(20) == 0 {
						val = string(bytes.Repeat([]byte(val), 300)) // overflow-sized
					}
					if err := tree.Put(wt, []byte(key), []byte(val)); err != nil {
						return err
					}
					ref[key] = val
				case 2: // delete
					err := tree.Delete(wt, []byte(key))
					_, existed := ref[key]
					if existed && err != nil {
						return fmt.Errorf("delete existing %s: %w", key, err)
					}
					if !existed && !errors.Is(err, ErrNotFound) {
						return fmt.Errorf("delete missing %s: %v", key, err)
					}
					delete(ref, key)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}

		// Verify full equality with the reference map via iteration.
		err = s.View(func(rt *storage.ReadTxn) error {
			c, err := tree.First(rt)
			if err != nil {
				return err
			}
			seen := 0
			for c.Valid() {
				k, err := c.Key()
				if err != nil {
					return err
				}
				v, err := c.Value()
				if err != nil {
					return err
				}
				want, ok := ref[string(k)]
				if !ok {
					return fmt.Errorf("round %d: unexpected key %s", round, k)
				}
				if string(v) != want {
					return fmt.Errorf("round %d: key %s value mismatch (len %d vs %d)", round, k, len(v), len(want))
				}
				seen++
				if err := c.Next(); err != nil {
					return err
				}
			}
			if seen != len(ref) {
				return fmt.Errorf("round %d: iterated %d keys, want %d", round, seen, len(ref))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPrefixScanProperty(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	// Keys 00..99 with two-digit prefix groups.
	err := s.Update(func(wt *storage.WriteTxn) error {
		for i := 0; i < 100; i++ {
			for j := 0; j < 5; j++ {
				k := fmt.Sprintf("%02d/%d", i, j)
				if err := tree.Put(wt, []byte(k), []byte("v")); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(prefixNum uint8) bool {
		p := fmt.Sprintf("%02d/", prefixNum%100)
		var count int
		err := s.View(func(rt *storage.ReadTxn) error {
			c, err := tree.Seek(rt, []byte(p))
			if err != nil {
				return err
			}
			for c.Valid() {
				k, err := c.Key()
				if err != nil {
					return err
				}
				if !bytes.HasPrefix(k, []byte(p)) {
					break
				}
				count++
				if err := c.Next(); err != nil {
					return err
				}
			}
			return nil
		})
		return err == nil && count == 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTreePersistsAcrossReopen(t *testing.T) {
	storagetest.SkipIfEphemeral(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "t.db")
	opts := storage.Options{Sync: storage.SyncOff, CheckpointFrames: -1}
	s, err := storage.Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	var root uint32
	err = s.Update(func(wt *storage.WriteTxn) error {
		tree, err := New(wt, int(s.PageSize()))
		if err != nil {
			return err
		}
		root = tree.Root()
		wt.SetCatalogRoot(root)
		for i := 0; i < 300; i++ {
			if err := tree.Put(wt, []byte(fmt.Sprintf("%04d", i)), []byte("persisted")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := storage.Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	err = s2.View(func(rt *storage.ReadTxn) error {
		r, err := rt.CatalogRoot()
		if err != nil {
			return err
		}
		tree := Load(r, int(s2.PageSize()))
		n, err := tree.Count(rt)
		if err != nil {
			return err
		}
		if n != 300 {
			t.Errorf("Count after reopen = %d", n)
		}
		v, err := tree.Get(rt, []byte("0123"))
		if err != nil {
			return err
		}
		if string(v) != "persisted" {
			t.Errorf("Get = %q", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandomKeysWithBinaryContent(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	rng := rand.New(rand.NewSource(99))
	keys := make([][]byte, 400)
	err := s.Update(func(wt *storage.WriteTxn) error {
		for i := range keys {
			k := make([]byte, 1+rng.Intn(100))
			rng.Read(k)
			// Deduplicate by appending the index.
			k = append(k, byte(i), byte(i>>8))
			keys[i] = k
			if err := tree.Put(wt, k, k); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.View(func(rt *storage.ReadTxn) error {
		for _, k := range keys {
			v, err := tree.Get(rt, k)
			if err != nil {
				return fmt.Errorf("Get(%x): %w", k, err)
			}
			if !bytes.Equal(v, k) {
				t.Errorf("value mismatch for %x", k)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPutSequential(b *testing.B) {
	dir := b.TempDir()
	s, err := storage.Open(filepath.Join(dir, "b.db"), storage.Options{Sync: storage.SyncOff, CheckpointFrames: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	var tree *Tree
	if err := s.Update(func(wt *storage.WriteTxn) error {
		tree, err = New(wt, int(s.PageSize()))
		return err
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = s.Update(func(wt *storage.WriteTxn) error {
		val := bytes.Repeat([]byte("v"), 100)
		for i := 0; i < b.N; i++ {
			if err := tree.Put(wt, []byte(fmt.Sprintf("%012d", i)), val); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkGetRandom(b *testing.B) {
	dir := b.TempDir()
	s, err := storage.Open(filepath.Join(dir, "b.db"), storage.Options{Sync: storage.SyncOff, CheckpointFrames: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	var tree *Tree
	const n = 10000
	if err := s.Update(func(wt *storage.WriteTxn) error {
		tree, err = New(wt, int(s.PageSize()))
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := tree.Put(wt, []byte(fmt.Sprintf("%012d", i)), []byte("value")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	rt, err := s.BeginRead()
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Get(rt, []byte(fmt.Sprintf("%012d", rng.Intn(n)))); err != nil {
			b.Fatal(err)
		}
	}
}
