package btree

import (
	"fmt"
	"math/rand"
	"testing"

	"micronn/internal/storage"
)

// TestBulkDeleteReclaimsLeaves verifies that deleting a contiguous key
// range unlinks and frees its leaves: a subsequent scan past the range must
// not traverse dead pages, and the freelist must grow.
func TestBulkDeleteReclaimsLeaves(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	const n = 3000
	err := s.Update(func(wt *storage.WriteTxn) error {
		for i := 0; i < n; i++ {
			if err := tree.Put(wt, []byte(fmt.Sprintf("%06d", i)), make([]byte, 100)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Delete the first 90% — the rebuild-style bulk move pattern.
	err = s.Update(func(wt *storage.WriteTxn) error {
		before := wt.FreePages()
		for i := 0; i < n*9/10; i++ {
			if err := tree.Delete(wt, []byte(fmt.Sprintf("%06d", i))); err != nil {
				return err
			}
		}
		freed := wt.FreePages() - before
		if freed < 50 {
			t.Errorf("only %d pages freed by bulk delete; empty leaves not reclaimed", freed)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The surviving keys must be reachable and iteration must be clean.
	err = s.View(func(rt *storage.ReadTxn) error {
		count, err := tree.Count(rt)
		if err != nil {
			return err
		}
		if count != n/10 {
			t.Errorf("Count = %d, want %d", count, n/10)
		}
		c, err := tree.Seek(rt, []byte("000000"))
		if err != nil {
			return err
		}
		if !c.Valid() {
			t.Fatal("cursor invalid")
		}
		k, err := c.Key()
		if err != nil {
			return err
		}
		if string(k) != fmt.Sprintf("%06d", n*9/10) {
			t.Errorf("first surviving key = %s", k)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeleteAllResetsTree drives the collapse cascade all the way to the
// root.
func TestDeleteAllResetsTree(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	const n = 2000
	err := s.Update(func(wt *storage.WriteTxn) error {
		for i := 0; i < n; i++ {
			if err := tree.Put(wt, []byte(fmt.Sprintf("%06d", i)), []byte("x")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Update(func(wt *storage.WriteTxn) error {
		pagesBefore := wt.PageCount() - wt.FreePages()
		for i := 0; i < n; i++ {
			if err := tree.Delete(wt, []byte(fmt.Sprintf("%06d", i))); err != nil {
				return err
			}
		}
		pagesAfter := wt.PageCount() - wt.FreePages()
		// Nearly everything should be back on the freelist.
		if pagesAfter > pagesBefore/4 {
			t.Errorf("in-use pages %d -> %d; collapse did not reclaim", pagesBefore, pagesAfter)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tree usable after full drain.
	mustPut(t, s, tree, map[string]string{"again": "works"})
	err = s.View(func(rt *storage.ReadTxn) error {
		v, err := tree.Get(rt, []byte("again"))
		if err != nil {
			return err
		}
		if string(v) != "works" {
			t.Errorf("Get = %q", v)
		}
		n, err := tree.Count(rt)
		if err != nil {
			return err
		}
		if n != 1 {
			t.Errorf("Count = %d", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestInterleavedDeleteInsertChainIntegrity hammers the sibling chain with
// random churn and verifies iteration equals a reference model throughout.
func TestInterleavedDeleteInsertChainIntegrity(t *testing.T) {
	s := testStore(t)
	tree := newTree(t, s)
	ref := map[string]bool{}
	rng := rand.New(rand.NewSource(77))
	val := make([]byte, 200) // large-ish values force frequent splits

	for round := 0; round < 8; round++ {
		err := s.Update(func(wt *storage.WriteTxn) error {
			for op := 0; op < 600; op++ {
				key := fmt.Sprintf("%05d", rng.Intn(1500))
				if rng.Intn(5) < 2 && ref[key] {
					if err := tree.Delete(wt, []byte(key)); err != nil {
						return fmt.Errorf("delete %s: %w", key, err)
					}
					delete(ref, key)
				} else {
					if err := tree.Put(wt, []byte(key), val); err != nil {
						return err
					}
					ref[key] = true
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		err = s.View(func(rt *storage.ReadTxn) error {
			seen := 0
			c, err := tree.First(rt)
			if err != nil {
				return err
			}
			var last string
			for c.Valid() {
				k, err := c.Key()
				if err != nil {
					return err
				}
				ks := string(k)
				if ks <= last && last != "" {
					return fmt.Errorf("round %d: order violation %s after %s", round, ks, last)
				}
				if !ref[ks] {
					return fmt.Errorf("round %d: phantom key %s", round, ks)
				}
				last = ks
				seen++
				if err := c.Next(); err != nil {
					return err
				}
			}
			if seen != len(ref) {
				return fmt.Errorf("round %d: iterated %d keys, ref has %d", round, seen, len(ref))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
