package micronn

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"micronn/internal/storage"
)

// lsmVec returns a deterministic pseudo-random vector.
func lsmVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func checkSingleInvariants(t *testing.T, db *DB) {
	t.Helper()
	if err := db.store.View(func(rt *storage.ReadTxn) error {
		return db.ix.CheckInvariants(rt)
	}); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestLSMGroupCommitVisibility drives concurrent writers through the group
// committer and checks the basic contract: every call that returned nil is
// visible, the op counters add up, and grouping actually happened.
func TestLSMGroupCommitVisibility(t *testing.T) {
	db, err := Open("", Options{
		Dim: 8, Backend: BackendMemory, Seed: 1,
		LSMIngest: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := db.Upsert(Item{ID: id, Vector: lsmVec(rng, 8)}); err != nil {
					t.Errorf("upsert %s: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Ingest.Enabled {
		t.Fatal("Ingest.Enabled = false, want true")
	}
	if st.NumVectors != writers*perWriter {
		t.Fatalf("NumVectors = %d, want %d", st.NumVectors, writers*perWriter)
	}
	if st.Ingest.GroupedOps != writers*perWriter {
		t.Fatalf("GroupedOps = %d, want %d", st.Ingest.GroupedOps, writers*perWriter)
	}
	if st.Ingest.GroupCommits == 0 || st.Ingest.GroupCommits > st.Ingest.GroupedOps {
		t.Fatalf("GroupCommits = %d out of range (1..%d)", st.Ingest.GroupCommits, st.Ingest.GroupedOps)
	}
	if st.Ingest.MaxGroupSize < 1 {
		t.Fatalf("MaxGroupSize = %d, want >= 1", st.Ingest.MaxGroupSize)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if _, err := db.Get(fmt.Sprintf("w%d-%d", w, i)); err != nil {
				t.Fatalf("get w%d-%d after commit: %v", w, i, err)
			}
		}
	}
	checkSingleInvariants(t, db)
}

// waitSeal polls until the background sealer (ingest.go triggerSeal) has
// produced at least one live run. Seals run off the group-commit path, so
// tests that need run-resident rows must wait for one.
func waitSeal(t *testing.T, db *DB) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := db.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Ingest.Seals > 0 && st.Ingest.RunCount > 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("background seal never produced a run")
}

// TestLSMSealAndShadowing fills the memtable past its bound so the delta
// seals into a sorted run, then checks newest-wins shadowing: an update of
// a run-resident id serves the new vector, a delete tombstones it, and a
// Rebuild absorbs runs and tombstones entirely.
func TestLSMSealAndShadowing(t *testing.T) {
	db, err := Open("", Options{
		Dim: 8, Backend: BackendMemory, Seed: 2,
		LSMIngest: true, MemtableMaxItems: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(7))
	vecs := make(map[string][]float32)
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("v%d", i)
		vecs[id] = lsmVec(rng, 8)
		if err := db.Upsert(Item{ID: id, Vector: vecs[id]}); err != nil {
			t.Fatal(err)
		}
	}
	waitSeal(t, db) // seals are asynchronous
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingest.Seals == 0 || st.Ingest.RunCount == 0 {
		t.Fatalf("Seals = %d RunCount = %d, want both > 0 after 40 upserts at bound 16", st.Ingest.Seals, st.Ingest.RunCount)
	}
	if st.Ingest.UnmergedItems != st.DeltaCount+st.Ingest.RunRows {
		t.Fatalf("UnmergedItems = %d, want delta %d + runs %d", st.Ingest.UnmergedItems, st.DeltaCount, st.Ingest.RunRows)
	}

	// v0..v15 were sealed into the first run. Update one, delete another.
	newV3 := lsmVec(rng, 8)
	if err := db.Upsert(Item{ID: "v3", Vector: newV3}); err != nil {
		t.Fatal(err)
	}
	vecs["v3"] = newV3
	if err := db.Delete("v5"); err != nil {
		t.Fatal(err)
	}
	delete(vecs, "v5")
	if err := db.Delete("v5"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second delete = %v, want ErrNotFound", err)
	}

	st, err = db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingest.TombstoneRows == 0 {
		t.Fatalf("TombstoneRows = 0, want > 0 after shadowing run rows")
	}

	got, err := db.Get("v3")
	if err != nil {
		t.Fatal(err)
	}
	for i := range newV3 {
		if got.Vector[i] != newV3[i] {
			t.Fatalf("Get(v3) returned stale vector (dim %d: %v != %v)", i, got.Vector[i], newV3[i])
		}
	}
	if _, err := db.Get("v5"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(v5) = %v, want ErrNotFound", err)
	}

	// Exact search must honor the shadowing too: v3's new vector wins, v5
	// never appears.
	for id, v := range vecs {
		resp, err := db.Search(SearchRequest{Vector: v, K: 1, Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 1 || resp.Results[0].ID != id {
			t.Fatalf("exact search for %s returned %+v", id, resp.Results)
		}
	}
	resp, err := db.Search(SearchRequest{Vector: newV3, K: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range resp.Results {
		if r.ID == "v5" {
			t.Fatal("deleted run row v5 surfaced in search")
		}
	}
	checkSingleInvariants(t, db)

	// Rebuild absorbs every run and tombstone.
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
	st, err = db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingest.RunCount != 0 || st.Ingest.TombstoneRows != 0 {
		t.Fatalf("after rebuild: RunCount = %d TombstoneRows = %d, want 0/0", st.Ingest.RunCount, st.Ingest.TombstoneRows)
	}
	if st.NumVectors != int64(len(vecs)) {
		t.Fatalf("after rebuild: NumVectors = %d, want %d", st.NumVectors, len(vecs))
	}
	for id, v := range vecs {
		resp, err := db.Search(SearchRequest{Vector: v, K: 1, Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 1 || resp.Results[0].ID != id {
			t.Fatalf("post-rebuild exact search for %s returned %+v", id, resp.Results)
		}
	}
	checkSingleInvariants(t, db)
}

// TestLSMCompactViaMaintain checks the incremental path: a sealed run on a
// built index is folded back into the partitions by Maintain (the compact
// action), leaving no runs and no tombstones.
func TestLSMCompactViaMaintain(t *testing.T) {
	db, err := Open("", Options{
		Dim: 8, Backend: BackendMemory, Seed: 3,
		TargetPartitionSize: 32,
		LSMIngest:           true, MemtableMaxItems: 16,
		FlushThreshold: 1 << 30, // isolate the compact step from delta flushes
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(11))
	ids := make(map[string][]float32)
	batch := make([]Item, 0, 200)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("base%d", i)
		ids[id] = lsmVec(rng, 8)
		batch = append(batch, Item{ID: id, Vector: ids[id]})
	}
	if err := db.UpsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}

	// Stream past the memtable bound so at least one run seals, deleting a
	// few run residents along the way.
	for i := 0; i < 48; i++ {
		id := fmt.Sprintf("new%d", i)
		ids[id] = lsmVec(rng, 8)
		if err := db.Upsert(Item{ID: id, Vector: ids[id]}); err != nil {
			t.Fatal(err)
		}
	}
	waitSeal(t, db) // seals are asynchronous; the deletes below must hit run rows
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("new%d", i)
		if err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
		delete(ids, id)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingest.RunCount == 0 {
		t.Fatalf("RunCount = 0, want sealed runs before compaction (seals=%d)", st.Ingest.Seals)
	}

	if _, err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	st, err = db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingest.RunCount != 0 {
		t.Fatalf("RunCount = %d after Maintain, want 0", st.Ingest.RunCount)
	}
	if st.Maintenance.Compactions == 0 {
		t.Fatal("Maintenance.Compactions = 0, want > 0")
	}
	for id, v := range ids {
		resp, err := db.Search(SearchRequest{Vector: v, K: 1, Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 1 || resp.Results[0].ID != id {
			t.Fatalf("post-compact exact search for %s returned %+v", id, resp.Results)
		}
	}
	checkSingleInvariants(t, db)
}

// TestLSMBackpressure checks the flush-backpressure satellite: once
// unmerged rows exceed MaxUnmergedItems, writers trigger background
// compaction, and Stats reports the trigger.
func TestLSMBackpressure(t *testing.T) {
	db, err := Open("", Options{
		Dim: 4, Backend: BackendMemory, Seed: 4,
		TargetPartitionSize: 32,
		LSMIngest:           true,
		MemtableMaxItems:    4,
		MaxUnmergedItems:    8,
		HardLimitItems:      12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(5))
	seed := make([]Item, 0, 64)
	for i := 0; i < 64; i++ {
		seed = append(seed, Item{ID: fmt.Sprintf("s%d", i), Vector: lsmVec(rng, 4)})
	}
	if err := db.UpsertBatch(seed); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := db.Upsert(Item{ID: fmt.Sprintf("p%d", i), Vector: lsmVec(rng, 4)}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingest.BackpressureTriggers == 0 {
		t.Fatalf("BackpressureTriggers = 0 after a 64-row storm over limit 8 (unmerged=%d)", st.Ingest.UnmergedItems)
	}
	checkSingleInvariants(t, db)
}

// TestLSMHammer races group-committed writers against searches and
// maintenance (compaction included) across the quantization and shard
// matrix. Run with -race in CI; the final state is reconciled against a
// per-writer mirror and the invariant battery.
func TestLSMHammer(t *testing.T) {
	for _, tc := range []struct {
		name   string
		quant  Quantization
		shards int
	}{
		{"float32-single", QuantNone, 0},
		{"float32-3shard", QuantNone, 3},
		{"sq8-single", QuantSQ8, 0},
		{"sq8-3shard", QuantSQ8, 3},
		{"sq4-single", QuantSQ4, 0},
		{"sq4-3shard", QuantSQ4, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{
				Dim: 8, Backend: BackendMemory, Seed: 9,
				TargetPartitionSize: 32,
				Quantization:        tc.quant,
				LSMIngest:           true, MemtableMaxItems: 16,
			}
			var db Store
			var sdb *ShardedDB
			var single *DB
			var err error
			if tc.shards > 0 {
				opts.Shards = tc.shards
				sdb, err = OpenSharded(t.TempDir(), opts)
				db = sdb
			} else {
				single, err = Open("", opts)
				db = single
			}
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			// Build a base index so compaction and rerank paths are live.
			rng := rand.New(rand.NewSource(13))
			base := make([]Item, 0, 128)
			for i := 0; i < 128; i++ {
				base = append(base, Item{ID: fmt.Sprintf("base%d", i), Vector: lsmVec(rng, 8)})
			}
			if err := db.UpsertBatch(base); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Rebuild(); err != nil {
				t.Fatal(err)
			}

			const writers, ops = 4, 120
			mirrors := make([]map[string][]float32, writers)
			var writerWG, auxWG sync.WaitGroup
			stop := make(chan struct{})
			// Searchers: random probes plus exact queries, continuously.
			for s := 0; s < 2; s++ {
				auxWG.Add(1)
				go func(s int) {
					defer auxWG.Done()
					rng := rand.New(rand.NewSource(100 + int64(s)))
					for {
						select {
						case <-stop:
							return
						default:
						}
						req := SearchRequest{Vector: lsmVec(rng, 8), K: 5, Exact: s == 0}
						if _, err := db.Search(req); err != nil {
							t.Errorf("search: %v", err)
							return
						}
					}
				}(s)
			}
			// Maintainer: keeps compacting while writers seal runs.
			auxWG.Add(1)
			go func() {
				defer auxWG.Done()
				for {
					select {
					case <-stop:
						return
					case <-time.After(2 * time.Millisecond):
					}
					if _, err := db.Maintain(); err != nil && !errors.Is(err, ErrClosed) {
						t.Errorf("maintain: %v", err)
						return
					}
				}
			}()
			// Writers: each owns its own id space, so the mirror needs no
			// cross-goroutine coordination.
			for w := 0; w < writers; w++ {
				writerWG.Add(1)
				go func(w int) {
					defer writerWG.Done()
					rng := rand.New(rand.NewSource(200 + int64(w)))
					mirror := make(map[string][]float32)
					mirrors[w] = mirror
					for i := 0; i < ops; i++ {
						id := fmt.Sprintf("w%d-%d", w, rng.Intn(40))
						if _, ok := mirror[id]; ok && rng.Intn(4) == 0 {
							if err := db.Delete(id); err != nil {
								t.Errorf("delete %s: %v", id, err)
								return
							}
							delete(mirror, id)
							continue
						}
						v := lsmVec(rng, 8)
						if err := db.Upsert(Item{ID: id, Vector: v}); err != nil {
							t.Errorf("upsert %s: %v", id, err)
							return
						}
						mirror[id] = v
					}
				}(w)
			}
			// Writers finish on their own; searchers and the maintainer run
			// until they do.
			done := make(chan struct{})
			go func() { writerWG.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("hammer timed out")
			}
			close(stop)
			auxWG.Wait()

			if t.Failed() {
				return
			}
			// Reconcile every writer's mirror against the database.
			for w := 0; w < writers; w++ {
				for id, v := range mirrors[w] {
					got, err := db.Get(id)
					if err != nil {
						t.Fatalf("get %s: %v", id, err)
					}
					for d := range v {
						if got.Vector[d] != v[d] {
							t.Fatalf("id %s dim %d: got %v want %v", id, d, got.Vector[d], v[d])
						}
					}
				}
				for i := 0; i < 40; i++ {
					id := fmt.Sprintf("w%d-%d", w, i)
					if _, ok := mirrors[w][id]; ok {
						continue
					}
					if _, err := db.Get(id); !errors.Is(err, ErrNotFound) {
						t.Fatalf("deleted id %s: err = %v, want ErrNotFound", id, err)
					}
				}
			}
			if sdb != nil {
				if err := sdb.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			} else {
				checkSingleInvariants(t, single)
			}
		})
	}
}

// TestNegativeCacheRevalidatesOnDataGen is the regression test for negative
// caching: an empty (negative) response is cached and served on repeat, but
// a data-generation bump — here, an upsert that makes the filter match —
// must invalidate it, never serve the stale empty result.
func TestNegativeCacheRevalidatesOnDataGen(t *testing.T) {
	db, err := Open("", Options{
		Dim: 4, Backend: BackendMemory, Seed: 6,
		Attributes:  []AttributeDef{{Name: "color", Type: AttrText, Indexed: true}},
		ResultCache: ResultCacheOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 8; i++ {
		err := db.Upsert(Item{
			ID: fmt.Sprintf("r%d", i), Vector: lsmVec(rng, 4),
			Attributes: map[string]any{"color": "red"},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}

	q := lsmVec(rng, 4)
	req := SearchRequest{Vector: q, K: 5, Filters: []Filter{Eq("color", "blue")}}

	resp, err := db.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 0 {
		t.Fatalf("expected empty result, got %+v", resp.Results)
	}
	cs := db.ResultCacheStats()
	if cs.NegativePuts == 0 {
		t.Fatalf("NegativePuts = 0, want the empty response cached")
	}

	resp, err = db.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 0 {
		t.Fatalf("repeat: expected empty result, got %+v", resp.Results)
	}
	if got := db.ResultCacheStats(); got.Hits == 0 {
		t.Fatalf("Hits = 0 after identical repeat, want a negative cache hit (stats %+v)", got)
	}

	// The write makes the filter non-empty and bumps the data generation:
	// the cached negative entry must revalidate, not answer.
	blue := lsmVec(rng, 4)
	err = db.Upsert(Item{ID: "b1", Vector: blue, Attributes: map[string]any{"color": "blue"}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = db.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].ID != "b1" {
		t.Fatalf("post-bump search served stale negative entry: %+v", resp.Results)
	}
	if got := db.ResultCacheStats(); got.Invalidations == 0 {
		t.Fatalf("Invalidations = 0 after data_gen bump, stats %+v", got)
	}
}

// TestFilterHeavyAdmission checks the TTL doorkeeper: a filter-heavy query
// with results is cached only on its second occurrence, while negative
// filter-heavy responses bypass the doorkeeper entirely.
func TestFilterHeavyAdmission(t *testing.T) {
	db, err := Open("", Options{
		Dim: 4, Backend: BackendMemory, Seed: 8,
		Attributes: []AttributeDef{
			{Name: "color", Type: AttrText, Indexed: true},
			{Name: "size", Type: AttrInt, Indexed: true},
		},
		ResultCache: ResultCacheOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 8; i++ {
		err := db.Upsert(Item{
			ID: fmt.Sprintf("x%d", i), Vector: lsmVec(rng, 4),
			Attributes: map[string]any{"color": "red", "size": int64(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}

	q := lsmVec(rng, 4)
	heavy := SearchRequest{Vector: q, K: 5, Filters: []Filter{Eq("color", "red"), Ge("size", int64(0))}}

	if _, err := db.Search(heavy); err != nil {
		t.Fatal(err)
	}
	cs := db.ResultCacheStats()
	if cs.AdmissionDeferred == 0 {
		t.Fatalf("AdmissionDeferred = 0 after first filter-heavy query, stats %+v", cs)
	}
	if cs.Entries != 0 {
		t.Fatalf("Entries = %d after deferred admission, want 0", cs.Entries)
	}

	if _, err := db.Search(heavy); err != nil {
		t.Fatal(err)
	}
	if got := db.ResultCacheStats(); got.Entries == 0 {
		t.Fatalf("second occurrence not admitted, stats %+v", got)
	}
	if _, err := db.Search(heavy); err != nil {
		t.Fatal(err)
	}
	if got := db.ResultCacheStats(); got.Hits == 0 {
		t.Fatalf("third occurrence not served from cache, stats %+v", got)
	}

	// Filter-heavy but negative: cached immediately.
	neg := SearchRequest{Vector: q, K: 5, Filters: []Filter{Eq("color", "blue"), Ge("size", int64(0))}}
	before := db.ResultCacheStats()
	if _, err := db.Search(neg); err != nil {
		t.Fatal(err)
	}
	after := db.ResultCacheStats()
	if after.NegativePuts == before.NegativePuts {
		t.Fatalf("negative filter-heavy response not cached immediately: %+v -> %+v", before, after)
	}
}
