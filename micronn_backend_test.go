package micronn

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"micronn/internal/storage"
	"micronn/internal/storage/storagetest"
)

// skipIfEphemeralBackend marks tests whose assertions require persistence
// across reopen; see storagetest.SkipIfEphemeral.
func skipIfEphemeralBackend(t testing.TB) {
	storagetest.SkipIfEphemeral(t)
}

func idOf(i int) string { return fmt.Sprintf("v%d", i) }

func randVecs(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		out[i] = v
	}
	return out
}

// TestBackendMmapReopenAutoDetect creates an mmap-backed database, fills
// and rebuilds it, and proves a BackendDefault reopen lands on the same
// engine with the data intact and searchable.
func TestBackendMmapReopenAutoDetect(t *testing.T) {
	skipIfEphemeralBackend(t)
	path := filepath.Join(t.TempDir(), "mm.mnn")
	vecs := randVecs(400, 16, 42)
	db, err := Open(path, Options{Dim: 16, Backend: BackendMmap})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vecs {
		if err := db.Upsert(Item{ID: idOf(i), Vector: v}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Backend != "mmap" {
		t.Errorf("Stats.Backend = %q, want mmap", st.Backend)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.InternalStore().Kind(); got != storage.BackendMmap {
		t.Errorf("auto-detected backend = %v, want mmap", got)
	}
	resp, err := db2.Search(SearchRequest{Vector: vecs[7], K: 1, NProbe: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 || resp.Results[0].ID != idOf(7) {
		t.Errorf("post-reopen search = %+v", resp.Results)
	}

	// Switching to the file backend explicitly still opens the same data:
	// one on-disk format.
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := Open(path, Options{Backend: BackendFile})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if got, err := db3.Get(idOf(7)); err != nil || got == nil {
		t.Errorf("Get via file backend: %v, %v", got, err)
	}
}

// TestBackendMemoryEphemeralDB checks the memory backend end to end at the
// micronn layer: fully functional while open, Stats reports it, nothing is
// left on disk, and reopening yields a fresh database.
func TestBackendMemoryEphemeralDB(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mem.mnn")
	vecs := randVecs(300, 8, 7)
	db, err := Open(path, Options{Dim: 8, Backend: BackendMemory})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vecs {
		if err := db.Upsert(Item{ID: idOf(i), Vector: v}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
	resp, err := db.Search(SearchRequest{Vector: vecs[3], K: 1, NProbe: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 || resp.Results[0].ID != idOf(3) {
		t.Errorf("memory search = %+v", resp.Results)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Backend != "memory" {
		t.Errorf("Stats.Backend = %q, want memory", st.Backend)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	if entries, err := os.ReadDir(dir); err != nil || len(entries) != 0 {
		t.Errorf("memory backend left files behind: %v (err=%v)", entries, err)
	}
	// Reopen with the backend pinned: fresh, empty database (Dim required
	// proves there is no store to inherit it from).
	if _, err := Open(path, Options{Backend: BackendMemory}); err == nil {
		t.Error("reopening an ephemeral database without Dim should fail (nothing persisted)")
	}
}

// TestBackendShardedMemoryEphemeral: an explicitly memory-backed sharded
// database must honor the same contract as a single store — fully
// functional while open (including the cross-shard invariant battery),
// and no manifest or shard directories left on disk.
func TestBackendShardedMemoryEphemeral(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ms.d")
	vecs := randVecs(120, 8, 5)
	sdb, err := OpenSharded(dir, Options{Dim: 8, Shards: 2, Backend: BackendMemory})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vecs {
		if err := sdb.Upsert(Item{ID: idOf(i), Vector: v}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sdb.Rebuild(); err != nil {
		t.Fatal(err)
	}
	resp, err := sdb.Search(SearchRequest{Vector: vecs[9], K: 1, NProbe: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 || resp.Results[0].ID != idOf(9) {
		t.Errorf("sharded memory search = %+v", resp.Results)
	}
	if err := sdb.CheckInvariants(); err != nil {
		t.Errorf("CheckInvariants on ephemeral sharded db: %v", err)
	}
	if err := sdb.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("sharded memory database left %s on disk (err=%v)", dir, err)
	}
}

// TestBackendShardedManifestPinning creates a sharded database with an
// explicit backend, and checks the manifest records it, reopen adopts it,
// and a conflicting explicit reopen fails fast.
func TestBackendShardedManifestPinning(t *testing.T) {
	skipIfEphemeralBackend(t)
	dir := filepath.Join(t.TempDir(), "sb.d")
	vecs := randVecs(200, 8, 9)
	sdb, err := OpenSharded(dir, Options{Dim: 8, Shards: 2, Backend: BackendMmap})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vecs {
		if err := sdb.Upsert(Item{ID: idOf(i), Vector: v}); err != nil {
			t.Fatal(err)
		}
	}
	if m := sdb.Manifest(); m.Backend != "mmap" {
		t.Errorf("manifest backend = %q, want mmap", m.Backend)
	}
	st, err := sdb.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Backend != "mmap" {
		t.Errorf("aggregated Stats.Backend = %q, want mmap", st.Backend)
	}
	if err := sdb.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenSharded(dir, Options{Backend: BackendFile}); err == nil {
		t.Error("conflicting explicit backend on reopen should fail")
	}
	re, err := OpenSharded(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 2; i++ {
		if got := re.Shard(i).InternalStore().Kind(); got != storage.BackendMmap {
			t.Errorf("shard %d backend = %v, want mmap", i, got)
		}
	}
	if got, err := re.Get(idOf(11)); err != nil || got == nil {
		t.Errorf("Get after sharded mmap reopen: %v, %v", got, err)
	}
}

// TestBackendPoolCountersExposed proves cache effectiveness is visible:
// the file backend reports pool hits/misses (and evictions under a tiny
// budget), single-store and aggregated across shards.
func TestBackendPoolCountersExposed(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pc.d")
	vecs := randVecs(600, 32, 3)
	sdb, err := OpenSharded(dir, Options{
		Dim: 32, Shards: 2, Backend: BackendFile,
		Device: DeviceProfile{CacheBytes: 2 << 20, Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	items := make([]Item, len(vecs))
	for i, v := range vecs {
		items[i] = Item{ID: idOf(i), Vector: v}
	}
	if err := sdb.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if _, err := sdb.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := sdb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sdb.DropCaches()
	for q := 0; q < 20; q++ {
		if _, err := sdb.Search(SearchRequest{Vector: vecs[q], K: 5, NProbe: 4}); err != nil {
			t.Fatal(err)
		}
	}
	per, err := sdb.ShardStats()
	if err != nil {
		t.Fatal(err)
	}
	agg := AggregateStats(per)
	if agg.CacheMisses == 0 {
		t.Error("cold queries produced no pool misses")
	}
	if agg.CacheHits == 0 {
		t.Error("repeated queries produced no pool hits")
	}
	var sumHits uint64
	for _, st := range per {
		sumHits += st.CacheHits
	}
	if agg.CacheHits != sumHits {
		t.Errorf("aggregated hits %d != sum of per-shard %d", agg.CacheHits, sumHits)
	}
}
