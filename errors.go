package micronn

import (
	"errors"
	"fmt"
)

// Typed sentinel errors. Every error returned by DB and ShardedDB that a
// caller can act on programmatically wraps one of these, so call sites can
// use errors.Is instead of matching message strings:
//
//	if errors.Is(err, micronn.ErrNotFound) { ... }
//
// The CLI maps each sentinel to a distinct exit code.
var (
	// ErrNotFound is returned when an id is absent (Get, Delete).
	ErrNotFound = errors.New("micronn: not found")
	// ErrClosed is returned by any operation on a database handle whose
	// Close has already been called.
	ErrClosed = errors.New("micronn: database is closed")
	// ErrDimMismatch is returned when a vector's dimensionality does not
	// match the database's configured Dim (upserts and queries).
	ErrDimMismatch = errors.New("micronn: dimension mismatch")
	// ErrBadRequest is returned when a request fails validation before
	// touching the store: negative K/NProbe/RerankFactor, an invalid
	// option value at Open, and similar caller mistakes.
	ErrBadRequest = errors.New("micronn: bad request")
)

// badRequestf builds an ErrBadRequest-wrapped validation error.
func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// normalizeSearchRequest is the single defaulting-and-validation path for
// single-vector queries: DB.Search, Snapshot.Search, ShardedDB.Search and
// the sharded scatter path all normalize through here, so the defaulting
// rules (K, NProbe, RerankFactor, exact-mode interactions) cannot drift
// between entry points. It mutates req in place; validation failures
// return ErrBadRequest or ErrDimMismatch. Idempotent, so layered entry
// points may each call it.
func normalizeSearchRequest(req *SearchRequest, dim, rerankDefault int, quantized bool) error {
	if req.K < 0 {
		return badRequestf("K %d must not be negative", req.K)
	}
	if req.NProbe < 0 {
		return badRequestf("NProbe %d must not be negative", req.NProbe)
	}
	if req.RerankFactor < 0 {
		return badRequestf("RerankFactor %d must not be negative", req.RerankFactor)
	}
	if len(req.Vector) != dim {
		return fmt.Errorf("%w: query dimension %d, want %d", ErrDimMismatch, len(req.Vector), dim)
	}
	if req.K == 0 {
		req.K = 10
	}
	if req.Exact {
		// The exhaustive path reads neither knob; zeroing them keeps
		// cache fingerprints of equal-by-behavior requests identical.
		req.NProbe = 0
		req.RerankFactor = 0
		return nil
	}
	if req.NProbe == 0 {
		req.NProbe = 8
	}
	if !quantized {
		req.RerankFactor = 0
	} else if req.RerankFactor == 0 {
		req.RerankFactor = rerankDefault
	}
	return nil
}

// normalizeHybridRequest is the defaulting-and-validation path for hybrid
// (lexical + vector) queries, shared by DB.HybridSearch,
// Snapshot.HybridSearch and the sharded router. The vector-leg knobs follow
// normalizeSearchRequest's rules exactly; the lexical-leg knobs (TextCol,
// FusionK, fusion weights) are canonicalized here so equal-by-behavior
// requests produce identical cache fingerprints. Idempotent.
func normalizeHybridRequest(req *HybridRequest, dim, rerankDefault int, quantized bool, ftsCols []string) error {
	if req.K < 0 {
		return badRequestf("K %d must not be negative", req.K)
	}
	if req.NProbe < 0 {
		return badRequestf("NProbe %d must not be negative", req.NProbe)
	}
	if req.RerankFactor < 0 {
		return badRequestf("RerankFactor %d must not be negative", req.RerankFactor)
	}
	if req.FusionK < 0 {
		return badRequestf("FusionK %d must not be negative", req.FusionK)
	}
	if req.VectorWeight < 0 || req.TextWeight < 0 {
		return badRequestf("fusion weights must not be negative")
	}
	if len(req.Vector) != dim {
		return fmt.Errorf("%w: query dimension %d, want %d", ErrDimMismatch, len(req.Vector), dim)
	}
	if req.K == 0 {
		req.K = 10
	}
	if req.Text == "" {
		// Pure vector query: zero every lexical knob so the request is
		// byte-equal to its Search counterpart in behavior and fingerprint.
		req.TextCol = ""
		req.FusionK = 0
		req.Weighted = false
		req.VectorWeight, req.TextWeight = 0, 0
	} else {
		if req.TextCol == "" {
			switch len(ftsCols) {
			case 1:
				req.TextCol = ftsCols[0]
			case 0:
				return badRequestf("hybrid text search requires a FullText attribute")
			default:
				return badRequestf("TextCol required: store has %d full-text attributes", len(ftsCols))
			}
		} else {
			ok := false
			for _, c := range ftsCols {
				if c == req.TextCol {
					ok = true
					break
				}
			}
			if !ok {
				return badRequestf("TextCol %q has no full-text index", req.TextCol)
			}
		}
		if req.FusionK == 0 {
			req.FusionK = defaultFusionK
		}
		if req.Weighted {
			if req.VectorWeight == 0 && req.TextWeight == 0 {
				req.VectorWeight, req.TextWeight = 0.5, 0.5
			}
		} else {
			req.VectorWeight, req.TextWeight = 0, 0
		}
	}
	if req.Exact {
		req.NProbe = 0
		req.RerankFactor = 0
		return nil
	}
	if req.NProbe == 0 {
		req.NProbe = 8
	}
	if !quantized {
		req.RerankFactor = 0
	} else if req.RerankFactor == 0 {
		req.RerankFactor = rerankDefault
	}
	return nil
}

// normalizeBatchSearchRequest is the batch analog of
// normalizeSearchRequest, applied by DB.BatchSearch, Snapshot.BatchSearch
// and the sharded batch path.
func normalizeBatchSearchRequest(req *BatchSearchRequest, dim, rerankDefault int, quantized bool) error {
	if req.K < 0 {
		return badRequestf("K %d must not be negative", req.K)
	}
	if req.NProbe < 0 {
		return badRequestf("NProbe %d must not be negative", req.NProbe)
	}
	if req.RerankFactor < 0 {
		return badRequestf("RerankFactor %d must not be negative", req.RerankFactor)
	}
	for i, q := range req.Vectors {
		if len(q) != dim {
			return fmt.Errorf("%w: query %d: dimension %d, want %d", ErrDimMismatch, i, len(q), dim)
		}
	}
	if req.K == 0 {
		req.K = 10
	}
	if req.NProbe == 0 {
		req.NProbe = 8
	}
	if !quantized {
		req.RerankFactor = 0
	} else if req.RerankFactor == 0 {
		req.RerankFactor = rerankDefault
	}
	return nil
}

// normalizeSearch applies the shared normalization under this store's
// configuration.
func (db *DB) normalizeSearch(req *SearchRequest) error {
	cfg := db.ix.Config()
	return normalizeSearchRequest(req, cfg.Dim, cfg.RerankFactor, cfg.Quantization != QuantNone)
}

func (db *DB) normalizeBatchSearch(req *BatchSearchRequest) error {
	cfg := db.ix.Config()
	return normalizeBatchSearchRequest(req, cfg.Dim, cfg.RerankFactor, cfg.Quantization != QuantNone)
}

func (db *DB) normalizeHybrid(req *HybridRequest) error {
	cfg := db.ix.Config()
	return normalizeHybridRequest(req, cfg.Dim, cfg.RerankFactor, cfg.Quantization != QuantNone, db.ix.FullTextColumns())
}

// normalizeSearch applies the shared normalization under the shard set's
// (identical) configuration — the same code path as a single store, so
// sharded defaulting can never drift.
func (s *ShardedDB) normalizeSearch(req *SearchRequest) error {
	return s.shards[0].normalizeSearch(req)
}

func (s *ShardedDB) normalizeBatchSearch(req *BatchSearchRequest) error {
	return s.shards[0].normalizeBatchSearch(req)
}

func (s *ShardedDB) normalizeHybrid(req *HybridRequest) error {
	return s.shards[0].normalizeHybrid(req)
}
