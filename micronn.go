// Package micronn is an embedded, disk-resident, updatable vector database
// — a from-scratch reproduction of "MicroNN: An On-device Disk-resident
// Updatable Vector Database" (Pound et al., SIGMOD 2025).
//
// MicroNN stores vectors in an IVF (inverted-file) index laid out over a
// transactional page store: vectors are clustered on disk by partition,
// centroids live in a small side table, and new vectors stream into a
// delta-store that every query scans. Memory is bounded by a configurable
// buffer-pool budget, so million-scale collections can be searched with a
// few megabytes of RAM. Hybrid queries combine nearest-neighbour search
// with relational attribute filters, chosen between pre- and post-filter
// plans by a selectivity-based optimizer, and batches of queries execute
// with multi-query optimization.
//
// # Quantization
//
// With Options.Quantization set to SQ8, partition rows store int8 scalar-
// quantized codes (one byte per dimension) instead of float32 vectors,
// cutting partition-scan I/O 4x. A per-dimension min/max codebook is
// trained at every Rebuild and persisted beside the centroid table (a
// version byte, the dimension, then the per-dimension minima and step
// sizes); exact float32 vectors move to a raw side table keyed by vector
// id. Searches scan the codes with asymmetric distance kernels, keep the
// top RerankFactor*K candidates, and rerank them against the exact vectors
// — SearchRequest.RerankFactor tunes that recall/latency knob per query.
// The delta-store keeps float32 vectors, so streaming upserts never
// retrain the codebook; out-of-range inserts clamp until the next Rebuild
// refreshes it. Exact searches, pre-filter plans and Get always use the
// raw store, preserving their full-precision contracts.
//
// QuantSQ4 halves the scan footprint again: two 4-bit codes are packed per
// byte (8x less partition I/O than float32), and the scan kernel never
// unpacks them — per-byte lookup tables fold both nibbles' distance
// contributions into one table read, and the hot loop walks codes eight
// bytes (sixteen dimensions) at a time, sustaining over 2 GB/s of code
// throughput on a single core. Sixteen levels per dimension is coarse, so
// the SQ4 trainer clips the codebook range to the
// [ClipPercentile, 1-ClipPercentile] quantiles of a reservoir sample
// (default 0.005) — outliers saturate instead of stretching the grid — and
// the exact rerank pass restores full-precision ordering over the
// RerankFactor*K survivors. The active scheme and clip are reported by
// Stats and selectable as `-quant sq4` in the CLI.
//
// # Errors
//
// Every actionable failure wraps one of four sentinels — ErrNotFound,
// ErrClosed, ErrDimMismatch, ErrBadRequest — so callers branch with
// errors.Is rather than matching message text. Request validation runs
// through one shared normalization path for every entry point (DB,
// Snapshot, ShardedDB, cached or not), so defaulting of K, NProbe and
// RerankFactor cannot drift between them.
//
// # Maintenance
//
// Streaming updates are kept healthy incrementally (paper §3.6). Maintain
// plans and applies one step at a time, each in its own short write
// transaction: the delta-store is flushed once it exceeds
// Options.FlushThreshold, partitions over Options.MaxPartitionSize are
// split by a local k-means over just their own rows, and partitions under
// Options.MinPartitionSize are merged into their nearest neighbors. Only a
// never-built index gets a full Rebuild; after that, growth is absorbed
// one partition at a time, so writers are never blocked behind a
// whole-index rewrite. Setting Options.AutoMaintain runs this policy on a
// background goroutine every Options.MaintainInterval; Close drains it.
// Stats reports the cumulative splits/merges/flushes and the current
// partition-size bounds.
//
// # Concurrency model
//
// Reads never block: Search, BatchSearch, Get and Stats each run on a
// page-store snapshot pinned at a committed state, so they observe a
// consistent index no matter what writers are doing, and scatter their
// partition scans across Options.Workers goroutines (on the mmap backend
// the probed partitions' leaf pages are posted as an madvise readahead
// hint before the scans fault through them). Writes are serialized by the
// store's single-writer gate — a FIFO ticket queue, so commit order is
// arrival order — but point writes (Upsert, Delete) hold it only for
// their own short transaction.
//
// The heavy maintenance steps are the reason that gate is not enough on
// its own: a partition split runs k-means over the partition's rows, and
// holding the writer gate for the whole computation would stall every
// concurrent writer behind it (searches would still proceed, but the
// write path would see the full k-means latency). Splits therefore run in
// two phases under a partition-granular lock manager. The split takes its
// target partition's lock (advisory, ordered acquisition — maintenance
// steps only), records the partition's version, and runs k-means on a
// read snapshot without holding the writer gate; only the short apply
// step upgrades into the gate, and before applying it validates that no
// intervening commit bumped the partition's version. A conflicting commit
// (every committed transaction bumps the versions of exactly the
// partitions it touched, after publish, before gate hand-off) makes the
// split return and retry against fresh data; an unrelated commit — a
// delta upsert while partition 7 splits — costs nothing. Concurrent
// searchers never consult the lock manager at all: they read the
// last-committed state of each partition throughout.
//
// Close is fenced against in-flight maintenance by an operation lock: a
// Maintain pass (foreground or background) holds it shared for the whole
// pass, Close takes it exclusively after marking the handle closed, so
// the store never shuts down under a live maintenance transaction and a
// mid-pass Close surfaces as a clean ErrClosed at the next step boundary.
//
// # Backends
//
// The page store under everything is pluggable (Options.Backend). The
// file backend — the default and the paper's configuration — preads pages
// through a byte-budgeted buffer pool. The read-mmap backend maps the
// database file read-only so hot page reads skip both the read syscall
// and the pool copy; writes, the WAL and checkpoints stay file-based, so
// durability is identical and the two backends share one on-disk format.
// The memory backend keeps the entire store (pages and WAL) in RAM: no
// files, no lock, gone at Close — made for ephemeral caches and tests.
// The backend used at create time is recorded in the store header, so
// reopening with BackendDefault picks the right engine automatically.
//
//	db, err := micronn.Open("photos.mnn", micronn.Options{Dim: 128, Backend: micronn.BackendMmap})
//
// # Result cache
//
// Interactive on-device workloads repeat queries — the same type-ahead
// search keystroke after keystroke, the same RAG lookup across turns —
// while the store keeps absorbing streaming updates. With
// Options.ResultCache.Enabled, MicroNN serves such repeats from a bounded
// LRU result cache whose invalidation is exact rather than heuristic:
// every committed write transaction (upsert, delete, flush, split, merge,
// rebuild, analyze) bumps a persistent per-store generation counter, each
// cached response records the generation it was computed at, and an entry
// is served only when the generation visible at the caller's read snapshot
// still matches — in which case the visible data is identical and the
// cached response is byte-identical to re-running the query. Entries are
// keyed by a canonicalized fingerprint of the whole request (vector,
// K/NProbe/RerankFactor, plan, and the filter set normalized so that
// filter order, duplicates, NaN payloads and signed zeros cannot split
// semantically equal queries), concurrent identical misses are deduplicated
// by a singleflight so the scan runs once, and memory is bounded by
// ResultCacheOptions.MaxEntries and MaxBytes (LRU eviction). On a sharded
// database validation is per shard: a query whose generations all match is
// answered without touching any shard, and when only some shards changed,
// the cached per-shard candidates are reused and only the changed shards
// are re-scanned. SearchRequest.NoCache bypasses the cache per query;
// Stats.Cache reports hits, misses, invalidations and bytes; DropCaches
// clears cached results along with the other caches. The cache is
// process-local and never persisted, so crash recovery cannot resurrect a
// stale entry.
//
// # Sharding
//
// OpenSharded hash-partitions a collection across N fully independent
// stores under one directory — each shard has its own page file, WAL, IVF
// index, SQ8 codebook and background maintainer, and a manifest pins the
// shard count and hash seed so every reopen routes identically (topology
// mismatches fail fast). Point operations touch exactly one shard; Search
// and BatchSearch scatter to every shard in parallel, spread the NProbe
// budget over the shard set, and merge the per-shard candidates — on a
// quantized database the pooled top RerankFactor*K candidates are reranked
// exactly on their owning shards, so recall matches a single store. Stats,
// Maintain and Snapshot aggregate across shards; Close drains every
// shard's maintainer. Batched writes commit one transaction per shard
// (atomic per shard, not across shards).
//
//	sdb, err := micronn.OpenSharded("photos.d", micronn.Options{Dim: 128, Shards: 4})
//
// # Ingest path
//
// With Options.LSMIngest the write path is LSM-shaped. Upsert, UpsertBatch,
// Delete and DeleteBatch enqueue onto an in-memory memtable under a short
// mutex and return after a group commit: a dedicated committer goroutine
// batches every writer that accumulated while the previous transaction held
// the single-writer gate into one storage transaction, so the gate wait,
// the WAL append and the data-generation bump are paid once per group
// instead of once per call. Each waiter receives its group's commit error —
// a call that returned nil is durable exactly as before — and a strict
// Delete of an absent id fails only that caller, never its group.
//
// When the WAL'd delta store exceeds Options.MemtableMaxItems or
// MemtableMaxBytes, the committer hands the delta to a single-flight
// background sealer that moves it into an immutable sorted run: id-ordered
// rows moved out of the delta in one transaction of its own, quantized
// with the current codebook when one is trained. Because the seal runs off
// the group-commit path, no writer's latency ever includes the seal
// transaction, and the crash contract is unchanged — durability lives in
// the group commit, and a crash mid-seal leaves the rows in the delta XOR
// the run, never torn. Seal failures are counted (Stats.Ingest.SealFailures,
// LastSealError) rather than silently retried. Searches read the delta,
// the runs and the IVF partitions under one snapshot with newest-wins
// shadowing (deletes of run-resident rows leave tombstones folded out at
// compaction).
//
// Compaction policy: Maintain groups the live runs into size tiers
// (tier t holds runs of [4^t, 4^(t+1)) rows) and folds the fullest tier —
// up to Options.MaxCompactRuns runs — in one merge via the same two-phase
// prepare path as splits, so compaction never stalls point writes. Merging
// a whole tier at once writes each touched destination partition, each
// centroid row and the state row once per merge instead of once per run,
// which is what keeps write amplification (Stats.Maintenance.RowChanges /
// rows ingested, or physically Stats.PagesWritten) flat under sustained
// storms. MaxCompactRuns: 1 restores the one-run-per-step policy.
//
// Zone metadata: sealing also persists, in the same transaction, a small
// per-run zone summary — the run's vid range plus Bloom filters over its
// vids and its indexed attribute values. Searches consult the zones
// instead of paying for runs that cannot matter: a filtered search whose
// equality predicates miss a run's attribute Bloom skips that run
// entirely, and the tombstone set is loaded only when a scanned run
// carries deletes, bounded to the scanned runs' vid range. Blooms have no
// false negatives, so pruned results are byte-identical to unpruned ones
// (Options.DisableZonePruning and DB.SetZonePruning exist for A/B
// verification; Stats.Ingest.ZonePruneChecks/ZonePrunedRuns count the
// effect).
//
// Flush backpressure bounds the unmerged total — past
// Options.MaxUnmergedItems the committer kicks a background compaction,
// and past HardLimitItems it briefly holds the pipeline so compaction
// catches up. Stats.Ingest reports group sizes, seals, unmerged rows and
// backpressure; the MICRONN_TEST_INGEST=lsm environment variable
// force-enables the path for the CI matrix leg.
//
// # Hybrid search
//
// HybridSearch runs one query down two legs under a single read snapshot
// and fuses the rankings. The lexical leg BM25-scores the request's Text
// against a FullText attribute's inverted index (disjunctive semantics:
// any query token matches; postings store unique tokens, so term frequency
// is binary and document length is the count of distinct indexed tokens).
// The vector leg is the ordinary ANN search — the same NProbe / Exact /
// RerankFactor / Filters knobs as SearchRequest. Both legs retrieve K
// candidates; by default they fuse by reciprocal-rank fusion
// (score = Σ 1/(FusionK+rank), FusionK defaulting to 60), or with
// HybridRequest.Weighted by a weighted sum of the normalized leg scores.
// Every fused result carries its exact full-precision distance — computed
// through the raw-vector side table on quantized stores — so SQ8/SQ4
// databases report the same distances as float32 ones.
//
//	resp, err := db.HybridSearch(micronn.HybridRequest{
//		Vector: embedding, Text: "golden retriever park", K: 10,
//	})
//
// An empty Text degrades to a pure vector query with results identical to
// Search. On a sharded database the lexical leg is two-phase: every shard
// reports its local document frequencies, the router sums them into global
// corpus statistics, and each shard then scores its own postings with the
// global figures — per-shard BM25 scores are therefore comparable, and with
// ties broken on asset id (a cross-topology total order) the fused ranking
// is identical to a single store holding the same corpus. Hybrid responses
// participate in the result cache under the same exact generation
// invalidation as searches, keyed by the canonicalized request (Text is
// fingerprinted as its unique token set). Stats.HybridSearches counts calls.
//
// # Quick start
//
//	db, err := micronn.Open("photos.mnn", micronn.Options{Dim: 128})
//	if err != nil { ... }
//	defer db.Close()
//
//	db.Upsert(micronn.Item{ID: "img1", Vector: v1})
//	db.Rebuild() // train the IVF index
//
//	res, err := db.Search(micronn.SearchRequest{Vector: q, K: 10})
package micronn

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"micronn/internal/btree"
	"micronn/internal/ivf"
	"micronn/internal/quant"
	"micronn/internal/reldb"
	"micronn/internal/rescache"
	"micronn/internal/stats"
	"micronn/internal/storage"
	"micronn/internal/vec"
)

// EnvCacheVar is an environment variable for the test matrix: setting it to
// "1" force-enables the result cache in every Open and OpenSharded that did
// not configure one, so the whole suite can re-run with caching on (the CI
// cache leg, mirroring the MICRONN_TEST_BACKEND matrix).
const EnvCacheVar = "MICRONN_TEST_CACHE"

// EnvQuantVar is an environment variable for the test matrix: setting it to
// a quantization name ("sq8", "sq4") makes every Open and OpenSharded that
// did not configure quantization create its store with that scheme, so the
// whole suite can re-run quantized (the CI quantization leg, mirroring
// MICRONN_TEST_BACKEND). It never affects reopening an existing database.
const EnvQuantVar = "MICRONN_TEST_QUANT"

// EnvIngestVar is an environment variable for the test matrix: setting it
// to "lsm" force-enables the LSM ingest path (Options.LSMIngest) in every
// Open and OpenSharded that did not enable it, so the whole suite can
// re-run with group-committed writes and sealed runs (the CI ingest leg,
// mirroring MICRONN_TEST_BACKEND).
const EnvIngestVar = "MICRONN_TEST_INGEST"

// Metric is the vector distance metric.
type Metric = vec.Metric

// Supported metrics.
const (
	L2     = vec.L2
	Cosine = vec.Cosine
	Dot    = vec.Dot
)

// Backend selects the page-store engine (see Options.Backend).
type Backend = storage.BackendKind

// Page-store backends.
const (
	// BackendDefault auto-detects the backend recorded in an existing
	// database's header and falls back to BackendFile.
	BackendDefault = storage.BackendDefault
	// BackendFile reads and writes the database file with pread/pwrite
	// through the buffer pool — the paper's configuration.
	BackendFile = storage.BackendFile
	// BackendMmap maps the database file read-only: page reads skip the
	// read syscall and the buffer pool's copy (the OS page cache is the
	// cache). Writes, WAL and checkpoints stay file-based; durability is
	// identical to BackendFile.
	BackendMmap = storage.BackendMmap
	// BackendMemory keeps the whole store in RAM: nothing touches the
	// filesystem, Close discards everything. For ephemeral caches and
	// fast tests.
	BackendMemory = storage.BackendMemory
)

// ParseBackend parses a backend name ("file", "mmap", "memory"; "" means
// BackendDefault).
func ParseBackend(name string) (Backend, error) { return storage.ParseBackend(name) }

// Quantization selects the partition-scan vector encoding.
type Quantization = quant.Type

// Quantization schemes.
const (
	// QuantNone stores full-precision float32 vectors (the default).
	QuantNone = quant.None
	// QuantSQ8 stores int8 scalar-quantized codes in the partitions and
	// reranks against exact vectors kept in a raw side table.
	QuantSQ8 = quant.SQ8
	// QuantSQ4 packs two 4-bit codes per byte — half the scanned bytes of
	// QuantSQ8 — trained with a quantile-clipped codebook (see
	// Options.ClipPercentile) and reranked against exact vectors.
	QuantSQ4 = quant.SQ4
)

// ParseQuantization parses a quantization name ("none", "sq8", "sq4"; ""
// means QuantNone), symmetric with ParseBackend.
func ParseQuantization(name string) (Quantization, error) {
	q, err := quant.ParseType(name)
	if err != nil {
		return QuantNone, badRequestf("unknown quantization %q", name)
	}
	return q, nil
}

// AttrType is the declared type of a filterable attribute.
type AttrType uint8

// Attribute types.
const (
	AttrInt AttrType = iota
	AttrFloat
	AttrText
	AttrBlob
)

func (t AttrType) colType() reldb.ColType {
	switch t {
	case AttrInt:
		return reldb.TypeInt64
	case AttrFloat:
		return reldb.TypeFloat64
	case AttrText:
		return reldb.TypeText
	default:
		return reldb.TypeBlob
	}
}

// AttributeDef declares a filterable attribute. Indexed attributes support
// efficient pre-filter plans for comparison predicates; FullText (text
// only) attributes support MATCH predicates through an inverted index.
type AttributeDef struct {
	Name     string
	Type     AttrType
	Indexed  bool
	FullText bool
}

// DeviceProfile bundles the resource knobs that distinguish the paper's
// device classes.
type DeviceProfile struct {
	// CacheBytes is the storage buffer-pool budget.
	CacheBytes int64
	// WriteBufferBytes bounds a write transaction's in-memory dirty
	// pages; larger transactions spill to the WAL. 0 picks a default of
	// a quarter of CacheBytes.
	WriteBufferBytes int64
	// Workers bounds query-time scan parallelism.
	Workers int
}

// Predefined profiles: the paper evaluates on a "Small DUT" (single-digit
// GiB of RAM, strict multi-tenant budgets) and a "Large DUT". The profile
// sets the database cache budget, the main determinant of MicroNN memory.
var (
	DeviceSmall = DeviceProfile{CacheBytes: 8 << 20, WriteBufferBytes: 2 << 20, Workers: 2}
	DeviceLarge = DeviceProfile{CacheBytes: 64 << 20, WriteBufferBytes: 16 << 20, Workers: 0} // 0 = all cores
)

// Options configures Open.
type Options struct {
	// Dim is the vector dimensionality (required when creating).
	Dim int
	// Metric is the distance metric (default L2).
	Metric Metric
	// TargetPartitionSize is the IVF target cluster size (default 100).
	TargetPartitionSize int
	// RebuildGrowthThreshold triggers Maintain's full rebuild once the
	// average partition has grown by this fraction since the last build
	// (default 0.5).
	RebuildGrowthThreshold float64
	// FlushThreshold makes Maintain flush the delta-store once it holds
	// at least this many vectors (default: TargetPartitionSize).
	FlushThreshold int
	// MinPartitionSize makes Maintain merge IVF partitions smaller than
	// this into their neighbors (default: TargetPartitionSize/4).
	MinPartitionSize int
	// MaxPartitionSize makes Maintain split IVF partitions larger than
	// this with a local re-clustering (default: 2*TargetPartitionSize).
	MaxPartitionSize int
	// AutoMaintain starts a background maintainer goroutine that runs
	// Maintain every MaintainInterval: the delta is flushed and partitions
	// are split/merged asynchronously, so sustained upserts never force a
	// blocking full rebuild once the index is built. Close drains the
	// goroutine before closing the store.
	AutoMaintain bool
	// MaintainInterval is the background maintainer's poll interval
	// (default 250ms). Ignored unless AutoMaintain is set.
	MaintainInterval time.Duration
	// Attributes declares filterable attributes (create time only).
	Attributes []AttributeDef
	// Device selects a resource profile (default DeviceLarge).
	Device DeviceProfile
	// Durable enables fsync on commit (off by default: embedded indexes
	// are derived data; enable for primary storage).
	Durable bool
	// ClusterBatchSize / ClusterIterations / BalancePenalty tune the
	// mini-batch k-means trainer; zero values pick defaults.
	ClusterBatchSize  int
	ClusterIterations int
	BalancePenalty    float32
	// CentroidIndexThreshold is the partition count above which a
	// two-level coarse centroid index accelerates probe selection
	// (0 = default 4096, negative = disabled).
	CentroidIndexThreshold int
	// Quantization selects the partition-scan encoding (create time
	// only): QuantNone stores float32 vectors, QuantSQ8 stores int8
	// codes, QuantSQ4 stores bit-packed 4-bit codes; both quantized
	// schemes rerank the top RerankFactor*K candidates against exact
	// vectors. The codebook is retrained at every Rebuild. Unknown values
	// are rejected at Open with ErrBadRequest.
	Quantization Quantization
	// RerankFactor is the default rerank multiplier for quantized
	// searches (0 = default 4). Unlike Quantization it is honored when
	// reopening an existing database. Ignored when Quantization is
	// QuantNone.
	RerankFactor int
	// ClipPercentile trims each dimension's trained quantization range to
	// the [p, 1-p] quantiles of a bounded training sample, so a few
	// outlier values cannot stretch the code grid (create time only).
	// 0 defaults to 0.005 for QuantSQ4 — whose 16-level grid is
	// outlier-sensitive — and to no clipping otherwise; negative disables
	// clipping explicitly. Values >= 0.5 are rejected with ErrBadRequest.
	ClipPercentile float64
	// Backend selects the page-store engine: BackendFile (default),
	// BackendMmap (read-only mapping of the database file; hot reads skip
	// the read syscall and the buffer-pool copy), or BackendMemory (fully
	// in-RAM and ephemeral). The choice is recorded in the store header,
	// so reopening with BackendDefault auto-detects the engine the
	// database was created with; file and mmap share one on-disk format
	// and may be switched freely. On a sharded database the manifest
	// additionally pins an explicitly chosen backend for every shard.
	Backend Backend
	// ResultCache configures the generation-versioned query result cache
	// (off by default; see the package documentation's "Result cache"
	// section for the exactness contract). On a sharded database one
	// cache serves the whole router with per-shard validation.
	ResultCache ResultCacheOptions
	// LSMIngest enables the LSM-shaped ingest path (see the package
	// documentation's "Ingest path" section): writes enqueue onto a
	// memtable and return after a group commit, the delta store seals
	// into immutable sorted runs past the memtable bounds, and
	// maintenance compacts the runs back into the IVF partitions. The
	// MICRONN_TEST_INGEST=lsm environment variable force-enables it.
	LSMIngest bool
	// MemtableMaxItems is the delta-store row count that triggers a seal
	// into a sorted run (0 = 4096). Only meaningful with LSMIngest.
	MemtableMaxItems int
	// MemtableMaxBytes bounds the delta store by approximate vector bytes
	// instead (0 = 4 MiB); the lower of the two bounds wins.
	MemtableMaxBytes int64
	// MaxUnmergedItems is the flush-backpressure soft limit: once
	// delta + run rows exceed it, the committer triggers a background
	// compaction (0 = 4x the memtable row bound).
	MaxUnmergedItems int
	// HardLimitItems is the backpressure hard limit: past it the
	// committer briefly holds the ingest pipeline while compaction
	// catches up (0 = 2x MaxUnmergedItems).
	HardLimitItems int
	// MaxCompactRuns caps how many sorted runs one maintenance compaction
	// step merges (0 = 8). Maintenance groups runs into size tiers and
	// folds a whole tier per step, writing each touched partition once for
	// the merge; 1 restores the PR 8 one-run-per-step policy (the
	// write-amplification control arm in the benches).
	MaxCompactRuns int
	// DisableZonePruning turns off per-run zone/Bloom pruning at search
	// time: every search then scans every live run and loads the full
	// tombstone set, exactly as before zone metadata existed. Pruning
	// never changes results (Blooms have no false negatives), so this
	// exists for A/B benches and the byte-identical property tests.
	DisableZonePruning bool
	// Seed makes index construction deterministic.
	Seed int64
	// Shards is the shard count for OpenSharded (create time only): items
	// are hashed by id across this many independent stores. The count is
	// persisted in the directory manifest; reopening with a different
	// non-zero value fails. Ignored by Open.
	Shards int
}

// ResultCacheOptions configures the query result cache.
type ResultCacheOptions struct {
	// Enabled turns the cache on. The MICRONN_TEST_CACHE=1 environment
	// variable force-enables it regardless (the CI cache matrix leg).
	Enabled bool
	// MaxEntries bounds the number of cached responses (0 = 1024).
	MaxEntries int
	// MaxBytes bounds the cache's approximate memory (0 = 8 MiB).
	MaxBytes int64
	// AdmissionTTL tunes the filter-heavy admission doorkeeper: a
	// response to a query carrying two or more filters is cached only on
	// its second occurrence within this window, so one-off analytic
	// queries cannot churn the LRU (0 = 1 minute). Negative responses
	// (zero results) bypass the doorkeeper and are cached immediately —
	// they are tiny, and generation validation still invalidates them the
	// moment a write commits.
	AdmissionTTL time.Duration

	// ignoreEnv suppresses the MICRONN_TEST_CACHE override — set on the
	// per-shard Options by OpenSharded, whose router-level cache already
	// honors it (shard-level caches under a router would never be
	// consulted, only waste memory).
	ignoreEnv bool
}

// resolve applies the environment override and defaults, returning the
// cache to use (nil when disabled).
func (o ResultCacheOptions) resolve() *rescache.Cache {
	enabled := o.Enabled
	if !o.ignoreEnv && os.Getenv(EnvCacheVar) == "1" {
		enabled = true
	}
	if !enabled {
		return nil
	}
	c := rescache.New(o.MaxEntries, o.MaxBytes)
	c.SetAdmissionTTL(o.AdmissionTTL)
	return c
}

// filterHeavyFilters is the filter count at which a query is "filter-heavy"
// for cache admission (see ResultCacheOptions.AdmissionTTL).
const filterHeavyFilters = 2

// searchPutPolicy classifies a search response for cache admission.
func searchPutPolicy(nFilters int, resp *SearchResponse) rescache.PutPolicy {
	return rescache.PutPolicy{
		FilterHeavy: nFilters >= filterHeavyFilters,
		Negative:    len(resp.Results) == 0,
	}
}

// batchPutPolicy classifies a batch response: negative only when every
// query came back empty (batches carry no filters, so never filter-heavy).
func batchPutPolicy(resp *BatchSearchResponse) rescache.PutPolicy {
	for _, rs := range resp.Results {
		if len(rs) > 0 {
			return rescache.PutPolicy{}
		}
	}
	return rescache.PutPolicy{Negative: true}
}

// DB is an embedded MicroNN database. All methods are safe for concurrent
// use: reads run against consistent snapshots, writes are serialized.
type DB struct {
	store *storage.Store
	rdb   *reldb.DB
	ix    *ivf.Index
	opts  Options

	// closed flips once at Close; public methods fail with ErrClosed
	// afterwards instead of touching a closed store.
	closed atomic.Bool

	// opMu fences Close against multi-transaction operations. Maintain
	// holds the read side for a pass (re-checking closed between steps, so
	// a pass ends within one step of Close being requested); Close takes
	// the write side after stopping the maintainer and before closing the
	// store, so an in-flight maintenance step — including the two-phase
	// split, which spans a read and a write transaction the storage layer
	// cannot fence as one unit — always completes against a live store.
	opMu sync.RWMutex

	// cache is the generation-versioned result cache (nil when disabled).
	cache *rescache.Cache

	// hybridSearches counts HybridSearch calls (surfaced via Stats).
	hybridSearches atomic.Uint64

	// ing is the LSM ingest committer (nil unless Options.LSMIngest).
	ing *ingester

	// Background maintainer lifecycle (nil channels when AutoMaintain is
	// off). maintStop is closed exactly once by stopMaintainer; maintDone
	// closes when the goroutine has fully drained.
	maintStop chan struct{}
	maintDone chan struct{}
	stopOnce  sync.Once

	// maintMu guards the maintenance telemetry below.
	maintMu     sync.Mutex
	maintTotals MaintenanceTotals
	lastMaint   *MaintenanceReport
}

// Item is a vector with its client-assigned id and optional attributes.
// Attribute values may be int/int64, float64, string or []byte.
type Item struct {
	ID         string
	Vector     []float32
	Attributes map[string]any
}

// Result is one search hit.
type Result struct {
	ID       string
	Distance float32
}

// Open opens or creates a MicroNN database at path.
func Open(path string, opts Options) (*DB, error) {
	// Validate create-time options up front: an unknown quantization or an
	// out-of-range clip percentile must fail loudly here, not be persisted.
	switch opts.Quantization {
	case QuantNone, QuantSQ8, QuantSQ4:
	default:
		return nil, badRequestf("unknown quantization %v", opts.Quantization)
	}
	if opts.ClipPercentile >= 0.5 {
		return nil, badRequestf("ClipPercentile %v out of range [0, 0.5)", opts.ClipPercentile)
	}
	if !opts.LSMIngest && os.Getenv(EnvIngestVar) == "lsm" {
		opts.LSMIngest = true
	}
	if opts.Quantization == QuantNone {
		if name := os.Getenv(EnvQuantVar); name != "" {
			q, err := ParseQuantization(name)
			if err != nil {
				return nil, err
			}
			opts.Quantization = q
		}
	}
	sync := storage.SyncOff
	if opts.Durable {
		sync = storage.SyncNormal
	}
	device := opts.Device
	if device.CacheBytes == 0 {
		device = DeviceLarge
	}
	writeBuf := device.WriteBufferBytes
	if writeBuf == 0 {
		writeBuf = device.CacheBytes / 4
	}
	maxDirty := int(writeBuf / storage.DefaultPageSize)
	if maxDirty < 64 {
		maxDirty = 64
	}
	store, err := storage.Open(path, storage.Options{
		PoolBytes:     device.CacheBytes,
		Sync:          sync,
		MaxDirtyPages: maxDirty,
		Backend:       opts.Backend,
	})
	if err != nil {
		return nil, err
	}
	rdb, err := reldb.Open(store)
	if err != nil {
		store.Close()
		return nil, err
	}

	var ix *ivf.Index
	if rdb.HasTable("meta") {
		ix, err = ivf.Open(rdb)
		if err == nil {
			// RerankFactor is a search-time default, not part of the
			// on-disk format: honor the caller's value on reopen too.
			ix.SetRerankFactor(opts.RerankFactor)
		}
	} else {
		if opts.Dim <= 0 {
			store.Close()
			return nil, fmt.Errorf("micronn: Dim required to create a new database")
		}
		attrs := make([]ivf.AttributeDef, len(opts.Attributes))
		for i, a := range opts.Attributes {
			attrs[i] = ivf.AttributeDef{
				Name: a.Name, Type: a.Type.colType(),
				Indexed: a.Indexed, FullText: a.FullText,
			}
		}
		err = store.Update(func(wt *storage.WriteTxn) error {
			var cerr error
			ix, cerr = ivf.Create(rdb, wt, ivf.Config{
				Dim:                    opts.Dim,
				Metric:                 opts.Metric,
				TargetPartitionSize:    opts.TargetPartitionSize,
				RebuildGrowthThreshold: opts.RebuildGrowthThreshold,
				Attributes:             attrs,
				Workers:                device.Workers,
				ClusterBatchSize:       opts.ClusterBatchSize,
				ClusterIterations:      opts.ClusterIterations,
				BalancePenalty:         opts.BalancePenalty,
				CentroidIndexThreshold: opts.CentroidIndexThreshold,
				Quantization:           opts.Quantization,
				RerankFactor:           opts.RerankFactor,
				ClipPercentile:         opts.ClipPercentile,
				Seed:                   opts.Seed,
			})
			return cerr
		})
	}
	if err != nil {
		store.Close()
		return nil, err
	}
	if opts.FlushThreshold == 0 {
		opts.FlushThreshold = ix.Config().TargetPartitionSize
	}
	ix.SetZonePruning(!opts.DisableZonePruning)
	db := &DB{store: store, rdb: rdb, ix: ix, opts: opts, cache: opts.ResultCache.resolve()}
	if opts.LSMIngest {
		db.ing = newIngester(db)
		go db.ing.run()
	}
	if opts.AutoMaintain {
		interval := opts.MaintainInterval
		if interval <= 0 {
			interval = 250 * time.Millisecond
		}
		db.maintStop = make(chan struct{})
		db.maintDone = make(chan struct{})
		go db.maintainLoop(interval)
	}
	return db, nil
}

// Close drains the background maintainer, then checkpoints and closes the
// database. After Close every other method returns ErrClosed; calling
// Close again is a harmless no-op.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	// Stop the ingest committer first: it drains queued writers with a
	// final group commit (they get real answers, not ErrClosed) and waits
	// for any background compaction it kicked, all against a live store.
	if db.ing != nil {
		db.ing.shutdown()
	}
	db.stopMaintainer()
	// A manual Maintain pass may still be in flight; it observes closed at
	// its next step boundary and returns ErrClosed. Wait for it here so the
	// store never disappears under a running maintenance step.
	db.opMu.Lock()
	defer db.opMu.Unlock()
	return db.store.Close()
}

// checkOpen guards public entry points against use after Close.
func (db *DB) checkOpen() error {
	if db.closed.Load() {
		return ErrClosed
	}
	return nil
}

// stopMaintainer stops the background maintainer and waits for its current
// pass to finish. Idempotent; a no-op when AutoMaintain is off.
func (db *DB) stopMaintainer() {
	if db.maintStop == nil {
		return
	}
	db.stopOnce.Do(func() { close(db.maintStop) })
	<-db.maintDone
}

// maintainLoop is the background maintainer (paper §3.6's index monitor run
// asynchronously): every tick it plans and applies maintenance steps, each
// in its own short write transaction, until the index is within policy
// bounds again. Failed passes are counted, not fatal — the next tick
// retries.
func (db *DB) maintainLoop(interval time.Duration) {
	defer close(db.maintDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-db.maintStop:
			return
		case <-ticker.C:
			if _, err := db.Maintain(); err != nil && !errors.Is(err, ErrClosed) {
				db.maintMu.Lock()
				db.maintTotals.Errors++
				db.maintMu.Unlock()
			}
		}
	}
}

// Dim returns the configured vector dimensionality.
func (db *DB) Dim() int { return db.ix.Config().Dim }

// Upsert inserts or replaces one item (keyed by Item.ID).
func (db *DB) Upsert(item Item) error {
	return db.UpsertBatch([]Item{item})
}

// UpsertBatch inserts or replaces items in one atomic transaction. Under
// Options.LSMIngest the batch rides a group commit shared with concurrent
// writers; the batch itself stays atomic either way.
func (db *DB) UpsertBatch(items []Item) error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	if db.ing != nil {
		return db.ing.upsert(items)
	}
	err := db.store.Update(func(wt *storage.WriteTxn) error {
		for _, item := range items {
			attrs, err := convertAttrs(item.Attributes)
			if err != nil {
				return err
			}
			if err := db.ix.Upsert(wt, item.ID, item.Vector, attrs); err != nil {
				return err
			}
		}
		return nil
	})
	if errors.Is(err, ivf.ErrDimMismatch) {
		return fmt.Errorf("%w: %v", ErrDimMismatch, err)
	}
	return err
}

// Delete removes the item with the given id.
func (db *DB) Delete(id string) error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	if db.ing != nil {
		return db.ing.delete([]string{id}, true)
	}
	err := db.store.Update(func(wt *storage.WriteTxn) error {
		return db.ix.Delete(wt, id)
	})
	if errors.Is(err, ivf.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

// DeleteBatch removes several items atomically; absent ids are ignored.
func (db *DB) DeleteBatch(ids []string) error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	if db.ing != nil {
		return db.ing.delete(ids, false)
	}
	return db.store.Update(func(wt *storage.WriteTxn) error {
		for _, id := range ids {
			if err := db.ix.Delete(wt, id); err != nil && !errors.Is(err, ivf.ErrNotFound) {
				return err
			}
		}
		return nil
	})
}

// Get returns the stored item.
func (db *DB) Get(id string) (*Item, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	var item *Item
	err := db.store.View(func(rt *storage.ReadTxn) error {
		var err error
		item, err = getItem(db.ix, rt, id)
		return err
	})
	return item, err
}

// getItem fetches one item at txn's snapshot, translating the index's
// not-found error and converting attributes — shared by DB.Get,
// Snapshot.Get and ShardedSnapshot.Get.
func getItem(ix *ivf.Index, txn btree.ReadTxn, id string) (*Item, error) {
	v, attrs, err := ix.GetVector(txn, id)
	if errors.Is(err, ivf.ErrNotFound) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	out := make(map[string]any, len(attrs))
	for k, val := range attrs {
		out[k] = valueToAny(val)
	}
	return &Item{ID: id, Vector: v, Attributes: out}, nil
}

func convertAttrs(in map[string]any) (map[string]reldb.Value, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make(map[string]reldb.Value, len(in))
	for k, v := range in {
		val, err := anyToValue(v)
		if err != nil {
			return nil, fmt.Errorf("micronn: attribute %q: %w", k, err)
		}
		out[k] = val
	}
	return out, nil
}

func anyToValue(v any) (reldb.Value, error) {
	switch x := v.(type) {
	case nil:
		return reldb.Null(), nil
	case int:
		return reldb.I(int64(x)), nil
	case int32:
		return reldb.I(int64(x)), nil
	case int64:
		return reldb.I(x), nil
	case float32:
		return reldb.F(float64(x)), nil
	case float64:
		return reldb.F(x), nil
	case string:
		return reldb.S(x), nil
	case []byte:
		return reldb.B(x), nil
	default:
		return reldb.Value{}, fmt.Errorf("unsupported value type %T", v)
	}
}

func valueToAny(v reldb.Value) any {
	switch v.Type {
	case reldb.TypeInt64:
		return v.Int
	case reldb.TypeFloat64:
		return v.Flt
	case reldb.TypeText:
		return v.Str
	case reldb.TypeBlob:
		return v.Bts
	default:
		return nil
	}
}

// Checkpoint folds the write-ahead log into the main file (also done
// automatically as the WAL grows and at Close).
func (db *DB) Checkpoint() error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	err := db.store.Checkpoint()
	if errors.Is(err, storage.ErrBusy) {
		return nil // readers pinned; the next opportunity will fold it
	}
	return err
}

// DropCaches empties the buffer pool, the in-memory centroid cache and the
// query result cache, simulating a cold start (used by benchmarks — a cold
// run must pay the scan, not replay a cached response).
func (db *DB) DropCaches() {
	db.store.DropCaches()
	db.ix.DropCaches()
	if db.cache != nil {
		db.cache.Clear()
	}
}

// Internal accessors for the bench harness.

// InternalIndex exposes the underlying IVF index for benchmarks and tools.
func (db *DB) InternalIndex() *ivf.Index { return db.ix }

// InternalStore exposes the underlying page store for benchmarks and tools.
func (db *DB) InternalStore() *storage.Store { return db.store }

// --- filters ---

// Filter is a disjunction of predicates; a SearchRequest's Filters slice is
// a conjunction of Filters. The helpers Eq/Ne/Lt/Le/Gt/Ge/Match build
// single-predicate filters; Any builds a disjunction.
type Filter = stats.Filter

func pred(col string, op reldb.Op, v any) reldb.Predicate {
	val, err := anyToValue(v)
	if err != nil {
		// Deferred error: an invalid operand becomes a null predicate,
		// which never matches and is surfaced by validation in Search.
		val = reldb.Null()
	}
	return reldb.Predicate{Column: col, Op: op, Value: val}
}

// Eq builds the filter column = value.
func Eq(col string, v any) Filter { return Filter{AnyOf: []reldb.Predicate{pred(col, reldb.OpEq, v)}} }

// Ne builds the filter column != value.
func Ne(col string, v any) Filter { return Filter{AnyOf: []reldb.Predicate{pred(col, reldb.OpNe, v)}} }

// Lt builds the filter column < value.
func Lt(col string, v any) Filter { return Filter{AnyOf: []reldb.Predicate{pred(col, reldb.OpLt, v)}} }

// Le builds the filter column <= value.
func Le(col string, v any) Filter { return Filter{AnyOf: []reldb.Predicate{pred(col, reldb.OpLe, v)}} }

// Gt builds the filter column > value.
func Gt(col string, v any) Filter { return Filter{AnyOf: []reldb.Predicate{pred(col, reldb.OpGt, v)}} }

// Ge builds the filter column >= value.
func Ge(col string, v any) Filter { return Filter{AnyOf: []reldb.Predicate{pred(col, reldb.OpGe, v)}} }

// Match builds a full-text filter: the attribute must contain every token
// of query (requires a FullText attribute).
func Match(col, query string) Filter {
	return Filter{AnyOf: []reldb.Predicate{{Column: col, Op: reldb.OpMatch, Value: reldb.S(query)}}}
}

// Any combines the predicates of several single-predicate filters into one
// disjunction (OR group).
func Any(filters ...Filter) Filter {
	var out Filter
	for _, f := range filters {
		out.AnyOf = append(out.AnyOf, f.AnyOf...)
	}
	return out
}

// --- search ---

// PlanType re-exports the hybrid plan identifiers.
type PlanType = ivf.PlanType

// Plan choices for SearchRequest.Plan.
const (
	PlanAuto       = ivf.PlanAuto
	PlanPreFilter  = ivf.PlanPreFilter
	PlanPostFilter = ivf.PlanPostFilter
)

// SearchRequest parameterizes Search.
type SearchRequest struct {
	// Vector is the query embedding (required).
	Vector []float32
	// K is the number of neighbours (default 10).
	K int
	// NProbe is the number of IVF partitions to scan; higher values
	// trade latency for recall (default 8).
	NProbe int
	// Filters is the conjunctive attribute filter set (optional).
	Filters []Filter
	// Exact forces exhaustive KNN.
	Exact bool
	// Plan overrides the hybrid optimizer (default PlanAuto).
	Plan PlanType
	// RerankFactor overrides the quantized-search rerank multiplier for
	// this query (0 = the Options default). Ignored on unquantized
	// databases.
	RerankFactor int
	// NoCache bypasses the result cache for this query: the search always
	// runs against the store and its response is not cached. A no-op when
	// the cache is disabled. (The staleness-oracle tests use it to obtain
	// ground truth beside cached responses; the CLI exposes it as
	// `search -no-cache`.)
	NoCache bool
}

// PlanInfo describes how a query was executed.
type PlanInfo = ivf.PlanInfo

// SearchResponse carries results plus execution details.
type SearchResponse struct {
	Results []Result
	Plan    PlanInfo
}

// searchAt runs the query at rt's snapshot (the uncached core).
func (db *DB) searchAt(rt *storage.ReadTxn, req SearchRequest) (*SearchResponse, error) {
	res, info, err := db.ix.Search(rt, req.Vector, ivf.SearchOptions{
		K: req.K, NProbe: req.NProbe, Filters: req.Filters,
		Exact: req.Exact, Plan: req.Plan, RerankFactor: req.RerankFactor,
	})
	if err != nil {
		if errors.Is(err, ivf.ErrDimMismatch) {
			return nil, fmt.Errorf("%w: %v", ErrDimMismatch, err)
		}
		return nil, err
	}
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = Result{ID: r.AssetID, Distance: r.Distance}
	}
	return &SearchResponse{Results: out, Plan: *info}, nil
}

// Search runs a K-nearest-neighbour query. With the result cache enabled a
// repeat of a semantically identical query is served from the cache as
// long as the store's data generation has not moved — the response is then
// byte-identical to re-running the search.
func (db *DB) Search(req SearchRequest) (*SearchResponse, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	if err := db.normalizeSearch(&req); err != nil {
		return nil, err
	}
	if db.cache == nil || req.NoCache {
		var resp *SearchResponse
		err := db.store.View(func(rt *storage.ReadTxn) error {
			var serr error
			resp, serr = db.searchAt(rt, req)
			return serr
		})
		return resp, err
	}
	return cachedQuery(db, db.searchCacheKey(req), cloneSearchResponse, searchResponseSize,
		func(resp *SearchResponse) rescache.PutPolicy { return searchPutPolicy(len(req.Filters), resp) },
		func(rt *storage.ReadTxn) (*SearchResponse, error) { return db.searchAt(rt, req) })
}

// flightResult carries a singleflight computation's response together with
// the generations its snapshot observed, so joiners can revalidate.
type flightResult[T any] struct {
	resp T
	gens []int64
}

// cachedQuery runs the cached-query protocol for a single-store query:
//
//  1. Fast path: a counted lookup at a fresh snapshot's generation serves
//     a valid entry without entering the flight (concurrent hits never
//     serialize).
//  2. Miss or stale: concurrent identical computations coalesce in a
//     singleflight. The leader re-validates at its own snapshot (another
//     flight may have just filled the entry), computes, and stores the
//     response stamped with the generation it was computed at — never a
//     newer counter.
//  3. A caller that merely JOINED a flight re-validates the shared result:
//     the flight's snapshot may predate the caller's (the caller could
//     already have observed a later write, e.g. its own), so the shared
//     response is served only when its generations equal the ones the
//     caller read itself; otherwise the caller recomputes at a fresh
//     snapshot. This preserves read-your-writes under coalescing.
//
// run executes the query at a pinned snapshot; clone copies the shared
// cached value before handing it to the caller; size feeds the byte
// budget.
func cachedQuery[T any](db *DB, key rescache.Key, clone func(T) T, size func(T) int64, pol func(T) rescache.PutPolicy, run func(*storage.ReadTxn) (T, error)) (T, error) {
	var zero T
	readGen := func() ([]int64, error) {
		rt, err := db.store.BeginRead()
		if err != nil {
			return nil, err
		}
		defer rt.Close()
		gen, err := db.ix.DataGeneration(rt)
		if err != nil {
			return nil, err
		}
		return []int64{gen}, nil
	}
	compute := func() (T, []int64, error) {
		rt, err := db.store.BeginRead()
		if err != nil {
			return zero, nil, err
		}
		defer rt.Close()
		gen, err := db.ix.DataGeneration(rt)
		if err != nil {
			return zero, nil, err
		}
		gens := []int64{gen}
		if v, _, out := db.cache.Lookup(key, gens); out == rescache.Hit {
			return v.(T), gens, nil
		}
		resp, err := run(rt)
		if err != nil {
			return zero, nil, err
		}
		db.cache.PutWithPolicy(key, gens, resp, size(resp), pol(resp))
		return resp, gens, nil
	}

	gens, err := readGen()
	if err != nil {
		return zero, err
	}
	if v, _, out := db.cache.Get(key, gens); out == rescache.Hit {
		return clone(v.(T)), nil
	}
	v, shared, err := db.cache.Do(key, func() (any, error) {
		resp, fgens, err := compute()
		if err != nil {
			return nil, err
		}
		return flightResult[T]{resp: resp, gens: fgens}, nil
	})
	if err != nil {
		return zero, err
	}
	fr := v.(flightResult[T])
	if shared && !rescache.GensEqual(fr.gens, gens) {
		resp, _, err := compute()
		if err != nil {
			return zero, err
		}
		return clone(resp), nil
	}
	return clone(fr.resp), nil
}

// searchCacheKey fingerprints req in canonical form. Database-insensitive
// knobs are normalized here so equal-by-behavior requests collide: the
// engine's K/NProbe defaults are applied, NProbe and RerankFactor are
// zeroed under Exact (the exhaustive path reads neither), RerankFactor is
// zeroed on unquantized stores (it is ignored there) and resolved to the
// configured default on quantized ones, and the plan override is zeroed
// for filterless queries (there is no pre/post choice without filters).
func (db *DB) searchCacheKey(req SearchRequest) rescache.Key {
	return rescache.KeyOf(rescache.Request{
		Kind:         rescache.KindSearch,
		K:            req.K,
		NProbe:       db.canonNProbe(req.NProbe, req.Exact),
		RerankFactor: db.canonRerank(req.RerankFactor, req.Exact),
		Plan:         canonPlan(req.Plan, req.Filters),
		Exact:        req.Exact,
		Vectors:      [][]float32{req.Vector},
		Filters:      req.Filters,
	})
}

func (db *DB) canonNProbe(nprobe int, exact bool) int {
	if exact {
		return 0
	}
	if nprobe <= 0 {
		return 8
	}
	return nprobe
}

func (db *DB) canonRerank(rr int, exact bool) int {
	if exact || db.ix.Config().Quantization == QuantNone {
		return 0
	}
	if rr <= 0 {
		return db.ix.Config().RerankFactor
	}
	return rr
}

func canonPlan(p PlanType, filters []Filter) int {
	if len(filters) == 0 {
		return 0
	}
	return int(p)
}

// cloneSearchResponse copies a cached response before handing it to a
// caller: cached values are shared, and callers own what they receive.
func cloneSearchResponse(r *SearchResponse) *SearchResponse {
	return &SearchResponse{Results: append([]Result(nil), r.Results...), Plan: r.Plan}
}

func cloneBatchSearchResponse(r *BatchSearchResponse) *BatchSearchResponse {
	out := &BatchSearchResponse{Results: make([][]Result, len(r.Results)), Info: r.Info}
	for i, rs := range r.Results {
		out.Results[i] = append([]Result(nil), rs...)
	}
	return out
}

// searchResponseSize estimates a response's memory footprint for the
// cache's byte budget.
func searchResponseSize(r *SearchResponse) int64 {
	n := int64(96)
	for _, res := range r.Results {
		n += 24 + int64(len(res.ID))
	}
	return n
}

func batchSearchResponseSize(r *BatchSearchResponse) int64 {
	n := int64(96)
	for _, rs := range r.Results {
		n += 24
		for _, res := range rs {
			n += 24 + int64(len(res.ID))
		}
	}
	return n
}

// BatchSearchRequest parameterizes BatchSearch.
type BatchSearchRequest struct {
	// Vectors holds the query embeddings.
	Vectors [][]float32
	// K is the number of neighbours per query (default 10).
	K int
	// NProbe is the per-query partition probe count (default 8).
	NProbe int
	// RerankFactor overrides the quantized-search rerank multiplier
	// (0 = the Options default). Ignored on unquantized databases.
	RerankFactor int
	// NoCache bypasses the result cache for this batch (see
	// SearchRequest.NoCache).
	NoCache bool
}

// BatchInfo re-exports batch execution statistics.
type BatchInfo = ivf.BatchInfo

// BatchSearchResponse carries per-query results in request order.
type BatchSearchResponse struct {
	Results [][]Result
	Info    BatchInfo
}

// batchSearchAt runs the batch at rt's snapshot (the uncached core).
func (db *DB) batchSearchAt(rt *storage.ReadTxn, queries *vec.Matrix, req BatchSearchRequest) (*BatchSearchResponse, error) {
	res, info, err := db.ix.BatchSearch(rt, queries, ivf.BatchOptions{K: req.K, NProbe: req.NProbe, RerankFactor: req.RerankFactor})
	if err != nil {
		if errors.Is(err, ivf.ErrDimMismatch) {
			return nil, fmt.Errorf("%w: %v", ErrDimMismatch, err)
		}
		return nil, err
	}
	out := make([][]Result, len(res))
	for qi, rs := range res {
		out[qi] = make([]Result, len(rs))
		for i, r := range rs {
			out[qi][i] = Result{ID: r.AssetID, Distance: r.Distance}
		}
	}
	return &BatchSearchResponse{Results: out, Info: *info}, nil
}

// BatchSearch executes many queries with multi-query optimization: each
// needed IVF partition is scanned once and shared across all queries that
// probe it, which cuts amortized per-query latency substantially for large
// batches (paper §3.4). With the result cache enabled, a repeated
// identical batch (same vectors in the same order) is served whole from
// the cache while the data generation holds.
func (db *DB) BatchSearch(req BatchSearchRequest) (*BatchSearchResponse, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	if err := db.normalizeBatchSearch(&req); err != nil {
		return nil, err
	}
	if len(req.Vectors) == 0 {
		return &BatchSearchResponse{}, nil
	}
	dim := db.ix.Config().Dim
	queries := vec.NewMatrix(len(req.Vectors), dim)
	for i, q := range req.Vectors {
		queries.SetRow(i, q)
	}
	if db.cache == nil || req.NoCache {
		var resp *BatchSearchResponse
		err := db.store.View(func(rt *storage.ReadTxn) error {
			var berr error
			resp, berr = db.batchSearchAt(rt, queries, req)
			return berr
		})
		return resp, err
	}
	return cachedQuery(db, db.batchCacheKey(req), cloneBatchSearchResponse, batchSearchResponseSize,
		batchPutPolicy,
		func(rt *storage.ReadTxn) (*BatchSearchResponse, error) { return db.batchSearchAt(rt, queries, req) })
}

// batchCacheKey fingerprints a batch request (vector order preserved —
// results are positional).
func (db *DB) batchCacheKey(req BatchSearchRequest) rescache.Key {
	return rescache.KeyOf(rescache.Request{
		Kind:         rescache.KindBatch,
		K:            req.K,
		NProbe:       db.canonNProbe(req.NProbe, false),
		RerankFactor: db.canonRerank(req.RerankFactor, false),
		Vectors:      req.Vectors,
	})
}

// --- maintenance ---

// MaintenanceReport describes what a maintenance pass did. A pass may take
// several steps (e.g. a flush followed by two splits); Action then joins
// the distinct step names with "+" in execution order.
type MaintenanceReport struct {
	// Action is "none", "flush", "rebuild", "split", "merge", or a
	// "+"-joined sequence of those.
	Action string
	// Steps is the number of maintenance steps executed, each in its own
	// short write transaction.
	Steps int
	// Rebuilds/Flushes/Splits/Merges/Compactions break the steps down by
	// kind.
	Rebuilds, Flushes, Splits, Merges, Compactions int
	// Duration of the maintenance work.
	Duration time.Duration
	// RowChanges is the number of database row writes performed — the
	// I/O footprint the incremental path minimizes.
	RowChanges int64
	// VectorsAssigned counts vectors (re)assigned to partitions.
	VectorsAssigned int64
	// Partitions is the resulting partition count.
	Partitions int
}

func report(action string, ms *ivf.MaintenanceStats) *MaintenanceReport {
	rep := &MaintenanceReport{
		Action:          action,
		Steps:           1,
		Duration:        ms.Duration,
		RowChanges:      ms.RowChanges,
		VectorsAssigned: ms.VectorsAssigned,
		Partitions:      ms.Partitions,
	}
	rep.count(ivf.MaintenanceAction(action))
	return rep
}

// count bumps the per-kind step counter for one executed action.
func (r *MaintenanceReport) count(a ivf.MaintenanceAction) {
	switch a {
	case ivf.ActionRebuild:
		r.Rebuilds++
	case ivf.ActionFlush:
		r.Flushes++
	case ivf.ActionSplit:
		r.Splits++
	case ivf.ActionMerge:
		r.Merges++
	case ivf.ActionCompact:
		r.Compactions++
	}
}

// absorb folds one executed step into the aggregate report.
func (r *MaintenanceReport) absorb(plan *ivf.MaintenancePlan, ms *ivf.MaintenanceStats) {
	name := string(plan.Action)
	if r.Action == "none" || r.Action == "" {
		r.Action = name
	} else if !strings.HasSuffix(r.Action, name) {
		r.Action += "+" + name
	}
	r.Steps++
	r.count(plan.Action)
	r.Duration += ms.Duration
	r.RowChanges += ms.RowChanges
	r.VectorsAssigned += ms.VectorsAssigned
	if ms.Partitions > 0 {
		r.Partitions = ms.Partitions
	}
}

// MaintenanceTotals accumulates the maintenance work performed through this
// handle — manual Rebuild/FlushDelta/Maintain calls and background
// maintainer passes combined.
type MaintenanceTotals struct {
	// Passes counts completed maintenance passes (Maintain calls).
	Passes int64
	// Rebuilds/Flushes/Splits/Merges/Compactions count executed steps by
	// kind (Compactions are sorted-run folds under LSM ingest).
	Rebuilds, Flushes, Splits, Merges, Compactions int64
	// StaleRetries counts two-phase maintenance plans (splits, run
	// compactions) invalidated by a concurrent commit and retried — the
	// price of keeping the writer gate open through the expensive half.
	StaleRetries int64
	// RowChanges is the cumulative count of row writes/deletes maintenance
	// performed. Divided by the rows ingested over the same span it is the
	// maintenance write-amplification factor — the number the tiered
	// compaction policy exists to keep flat under sustained ingest.
	RowChanges int64
	// Errors counts background passes that failed.
	Errors int64
}

// recordStep counts one committed maintenance step and accumulates its row
// writes into the write-amplification counter. Steps are recorded as they
// commit (not when the pass ends), so totals snapshots taken while a
// background pass is mid-flight stay accurate.
func (db *DB) recordStep(a ivf.MaintenanceAction, ms *ivf.MaintenanceStats) {
	db.maintMu.Lock()
	defer db.maintMu.Unlock()
	if ms != nil {
		db.maintTotals.RowChanges += ms.RowChanges
	}
	switch a {
	case ivf.ActionRebuild:
		db.maintTotals.Rebuilds++
	case ivf.ActionFlush:
		db.maintTotals.Flushes++
	case ivf.ActionSplit:
		db.maintTotals.Splits++
	case ivf.ActionMerge:
		db.maintTotals.Merges++
	case ivf.ActionCompact:
		db.maintTotals.Compactions++
	}
}

// recordStaleRetry counts one invalidated-and-retried two-phase plan.
func (db *DB) recordStaleRetry() {
	db.maintMu.Lock()
	db.maintTotals.StaleRetries++
	db.maintMu.Unlock()
}

// recordMaintenance marks a finished pass.
func (db *DB) recordMaintenance(rep *MaintenanceReport) {
	db.maintMu.Lock()
	defer db.maintMu.Unlock()
	db.maintTotals.Passes++
	db.lastMaint = rep
}

// MaintenanceTotals returns the cumulative maintenance counters and the
// most recent pass's report (nil before the first pass). The report is a
// copy the caller owns: mutating it cannot race the report Stats and
// subsequent calls read under maintMu.
func (db *DB) MaintenanceTotals() (MaintenanceTotals, *MaintenanceReport) {
	db.maintMu.Lock()
	defer db.maintMu.Unlock()
	if db.lastMaint == nil {
		return db.maintTotals, nil
	}
	rep := *db.lastMaint
	return db.maintTotals, &rep
}

// Rebuild retrains the IVF quantizer and rewrites all partitions. Queries
// proceed on consistent snapshots while it runs; writes queue behind it.
func (db *DB) Rebuild() (*MaintenanceReport, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	var ms *ivf.MaintenanceStats
	err := db.store.Update(func(wt *storage.WriteTxn) error {
		var rerr error
		ms, rerr = db.ix.Rebuild(wt)
		return rerr
	})
	if err != nil {
		return nil, err
	}
	rep := report("rebuild", ms)
	db.recordStep(ivf.ActionRebuild, ms)
	db.recordMaintenance(rep)
	return rep, nil
}

// FlushDelta incrementally merges the delta-store into the IVF partitions.
func (db *DB) FlushDelta() (*MaintenanceReport, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	var ms *ivf.MaintenanceStats
	err := db.store.Update(func(wt *storage.WriteTxn) error {
		var ferr error
		ms, ferr = db.ix.FlushDelta(wt)
		return ferr
	})
	if err != nil {
		return nil, err
	}
	rep := report("flush", ms)
	db.recordStep(ivf.ActionFlush, ms)
	db.recordMaintenance(rep)
	return rep, nil
}

// maintPolicy derives the ivf maintenance policy from the open options.
func (db *DB) maintPolicy() ivf.MaintenancePolicy {
	return ivf.MaintenancePolicy{
		FlushThreshold:   db.opts.FlushThreshold,
		MinPartitionSize: db.opts.MinPartitionSize,
		MaxPartitionSize: db.opts.MaxPartitionSize,
		MaxCompactRuns:   db.opts.MaxCompactRuns,
	}
}

// maintainStepLimit bounds a single Maintain pass: under a sustained write
// storm the pass yields instead of chasing the delta forever (the next pass
// picks up where it left off).
const maintainStepLimit = 256

// Maintain runs the index monitor's policy (paper §3.6): an initial full
// build if the index was never built, then incremental steps only — delta
// flushes past FlushThreshold, splits of partitions over MaxPartitionSize,
// merges of partitions under MinPartitionSize. Splits — the common steady-
// state step — run in two phases: the partition is collected and clustered
// against a pinned snapshot while holding only its own partition lock, and
// the store-wide writer gate is taken just for the short apply step, so
// concurrent searches and point writes proceed through the expensive half.
// Other steps plan AND execute inside one short write transaction (the
// decision can never act on a stale snapshot), and the pass loops until the
// planner reports a healthy index. Once built, Maintain never falls back to
// a full rebuild: growth is absorbed one partition at a time, keeping
// writers responsive throughout.
func (db *DB) Maintain() (*MaintenanceReport, error) {
	db.opMu.RLock()
	defer db.opMu.RUnlock()
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	rep := &MaintenanceReport{Action: "none"}
	for i := 0; i < maintainStepLimit; i++ {
		// Close may have been requested mid-pass; it is blocked on opMu
		// until this pass returns, so end the pass at the step boundary.
		if err := db.checkOpen(); err != nil {
			return nil, err
		}
		// Read-only pre-check: a healthy index (the common case for every
		// idle AutoMaintain tick) must not cost concurrent writers the
		// exclusive writer lock. MaintainStep re-plans inside the write
		// transaction, so the authoritative decision still shares a
		// snapshot with the action it takes.
		var preview *ivf.MaintenancePlan
		err := db.store.View(func(rt *storage.ReadTxn) error {
			var perr error
			preview, perr = db.ix.PlanMaintenance(rt, db.maintPolicy())
			return perr
		})
		if err != nil {
			return nil, err
		}
		if preview.Action == ivf.ActionNone {
			break
		}
		if preview.Action == ivf.ActionSplit {
			ms, err := db.splitTwoPhase(preview.Partition)
			if err != nil {
				return nil, err
			}
			db.recordStep(ivf.ActionSplit, ms)
			rep.absorb(preview, ms)
			continue
		}
		if preview.Action == ivf.ActionCompact {
			// Run compaction mirrors the split: the merge's assignment
			// work runs against a pinned snapshot under the runs' own
			// locks, with only the apply step inside the writer gate.
			// preview.Runs is the whole size tier the planner selected.
			ms, err := db.compactTwoPhase(preview.Runs)
			if err != nil {
				return nil, err
			}
			db.recordStep(ivf.ActionCompact, ms)
			rep.absorb(preview, ms)
			continue
		}
		var plan *ivf.MaintenancePlan
		var ms *ivf.MaintenanceStats
		err = db.store.Update(func(wt *storage.WriteTxn) error {
			var serr error
			plan, ms, serr = db.ix.MaintainStep(wt, db.maintPolicy())
			return serr
		})
		if err != nil {
			return nil, err
		}
		if plan.Action == ivf.ActionNone {
			break
		}
		db.recordStep(plan.Action, ms)
		rep.absorb(plan, ms)
	}
	db.recordMaintenance(rep)
	return rep, nil
}

// splitTwoPhase runs the two-phase splitter, retrying a few times when a
// concurrent commit invalidates the prepared plan, then falling back to the
// single-transaction split so a sustained write storm cannot starve
// maintenance of progress (the fallback pays the writer-gate hold once).
func (db *DB) splitTwoPhase(part int64) (*ivf.MaintenanceStats, error) {
	const staleRetries = 3
	for attempt := 0; attempt < staleRetries; attempt++ {
		ms, err := db.ix.SplitPartitionTwoPhase(part)
		if err == nil {
			return ms, nil
		}
		if !errors.Is(err, ivf.ErrPlanStale) {
			return nil, err
		}
		db.recordStaleRetry()
	}
	var ms *ivf.MaintenanceStats
	err := db.store.Update(func(wt *storage.WriteTxn) error {
		var serr error
		ms, serr = db.ix.SplitPartition(wt, part)
		return serr
	})
	return ms, err
}

// compactTwoPhase folds a tier of sorted runs into the partitions with the
// same prepare/validate/apply protocol (and the same stale-plan fallback)
// as splitTwoPhase.
func (db *DB) compactTwoPhase(runIDs []int64) (*ivf.MaintenanceStats, error) {
	const staleRetries = 3
	for attempt := 0; attempt < staleRetries; attempt++ {
		ms, err := db.ix.CompactRunsTwoPhase(runIDs)
		if err == nil {
			return ms, nil
		}
		if !errors.Is(err, ivf.ErrPlanStale) {
			return nil, err
		}
		db.recordStaleRetry()
	}
	var ms *ivf.MaintenanceStats
	err := db.store.Update(func(wt *storage.WriteTxn) error {
		var serr error
		ms, serr = db.ix.CompactRuns(wt, runIDs)
		return serr
	})
	return ms, err
}

// SetZonePruning toggles per-run zone/Bloom pruning at search time (on by
// default unless Options.DisableZonePruning was set). Pruning never changes
// results — Blooms have no false negatives — so this is an A/B switch for
// benches and correctness tests, safe to flip on a live database.
func (db *DB) SetZonePruning(enabled bool) {
	db.ix.SetZonePruning(enabled)
}

// Analyze refreshes the attribute statistics used by the hybrid optimizer.
func (db *DB) Analyze() error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	return db.store.Update(func(wt *storage.WriteTxn) error {
		return db.ix.AnalyzeAttributes(wt)
	})
}

// --- stats ---

// Stats reports database and index health.
type Stats struct {
	// NumVectors is the total indexed vector count.
	NumVectors int64
	// DeltaCount is the number of vectors in the delta-store.
	DeltaCount int64
	// NumPartitions is the IVF partition count (excluding the delta).
	NumPartitions int64
	// AvgPartitionSize is the mean IVF partition size.
	AvgPartitionSize float64
	// SmallestPartition / LargestPartition are the observed smallest and
	// largest IVF partition sizes (0 when the index has no partitions) —
	// what incremental maintenance keeps inside the configured
	// Options.MinPartitionSize/MaxPartitionSize bounds. Named differently
	// from those knobs on purpose: one pair is policy, this pair is
	// measurement.
	SmallestPartition int64
	LargestPartition  int64
	// NeedsRebuild mirrors the legacy growth trigger; with incremental
	// maintenance active it is informational (growth is absorbed by
	// splits, never a full rebuild).
	NeedsRebuild bool
	// Maintenance accumulates the maintenance work done on this handle.
	Maintenance MaintenanceTotals
	// Ingest reports the LSM ingest path: group-commit batching, sealed
	// sorted runs, tombstones and flush backpressure. The run counts are
	// filled even when the path is disabled.
	Ingest IngestStats
	// GateWaits counts write transactions that queued behind the
	// single-writer gate; GateWaitNs is their total queued time. Group
	// commit exists to keep these flat under concurrent point writes.
	GateWaits  uint64
	GateWaitNs int64
	// LastMaintainAction is the most recent maintenance pass's action
	// ("" before the first pass).
	LastMaintainAction string
	// Backend names the page-store engine serving this database ("file",
	// "mmap" or "memory").
	Backend string
	// Quantization is the active partition-row encoding scheme.
	Quantization Quantization
	// ClipPercentile is the codebook trainer's quantile clip (0 when the
	// database is unquantized or trains on the full value range).
	ClipPercentile float64
	// CacheBytes is current buffer-pool memory; CacheBudget the limit.
	CacheBytes  int64
	CacheBudget int64
	// CacheHits / CacheMisses / CacheEvictions are cumulative buffer-pool
	// counters. Note the pool's scope is backend-dependent: under the
	// mmap and memory backends base pages bypass the pool (only
	// WAL-resident page images are cached), so low traffic here is
	// expected and healthy.
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	// WALBytes is the current write-ahead log size.
	WALBytes int64
	// FileBytes is the main database file size (pages * page size).
	FileBytes int64
	// PagesWritten is the cumulative count of page images appended to the
	// WAL since this handle opened the store — the physical
	// write-amplification signal the benches divide by rows ingested.
	PagesWritten uint64
	// Cache reports the query result cache (all zeros when disabled). On
	// a sharded database the one router-level cache is reported.
	Cache CacheStats
	// HybridSearches counts HybridSearch calls on this handle (on a
	// sharded database, router-level calls).
	HybridSearches uint64
}

// CacheStats reports the query result cache.
type CacheStats struct {
	// Enabled is true when the database serves from a result cache.
	Enabled bool
	// Hits counts queries answered entirely from the cache; Misses
	// queries with no usable entry; Invalidations queries that found an
	// entry whose data generation had moved (the entry was recomputed).
	Hits, Misses, Invalidations uint64
	// Evictions counts entries displaced by the LRU bounds.
	Evictions uint64
	// SkippedShardScans counts per-shard scans avoided by partial reuse
	// on a sharded database (shards whose generation had not moved).
	SkippedShardScans uint64
	// NegativePuts counts cached empty responses (negative caching);
	// AdmissionDeferred counts filter-heavy responses the doorkeeper
	// declined to cache on first sight (see
	// ResultCacheOptions.AdmissionTTL).
	NegativePuts      uint64
	AdmissionDeferred uint64
	// Entries and Bytes describe the current contents.
	Entries int
	Bytes   int64
}

// HitRatio returns hits / (hits + misses + invalidations), or 0 before any
// lookup.
func (c CacheStats) HitRatio() float64 {
	total := c.Hits + c.Misses + c.Invalidations
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// cacheStatsOf converts a rescache snapshot.
func cacheStatsOf(c *rescache.Cache) CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := c.Stats()
	return CacheStats{
		Enabled:           true,
		Hits:              st.Hits,
		Misses:            st.Misses,
		Invalidations:     st.Invalidations,
		Evictions:         st.Evictions,
		SkippedShardScans: st.SkippedScans,
		NegativePuts:      st.NegativePuts,
		AdmissionDeferred: st.AdmissionDeferred,
		Entries:           st.Entries,
		Bytes:             st.Bytes,
	}
}

// ResultCacheStats returns the result cache counters (zeros when the cache
// is disabled).
func (db *DB) ResultCacheStats() CacheStats { return cacheStatsOf(db.cache) }

// Stats returns a consistent snapshot of operational statistics.
func (db *DB) Stats() (Stats, error) {
	var out Stats
	if err := db.checkOpen(); err != nil {
		return out, err
	}
	err := db.store.View(func(rt *storage.ReadTxn) error {
		st, err := db.ix.Stats(rt)
		if err != nil {
			return err
		}
		out.NumVectors = st.NumVectors
		out.DeltaCount = st.DeltaCount
		out.NumPartitions = st.NumPartitions
		out.AvgPartitionSize = st.AvgPartitionSize
		out.Ingest.RunCount = st.RunCount
		out.Ingest.RunRows = st.RunRows
		out.Ingest.TombstoneRows = st.DeadRows
		out.Ingest.UnmergedItems = st.DeltaCount + st.RunRows
		out.SmallestPartition, out.LargestPartition, err = db.ix.PartitionSizeBounds(rt)
		if err != nil {
			return err
		}
		out.NeedsRebuild, err = db.ix.NeedsRebuild(rt)
		return err
	})
	if err != nil {
		return out, err
	}
	db.maintMu.Lock()
	out.Maintenance = db.maintTotals
	if db.lastMaint != nil {
		out.LastMaintainAction = db.lastMaint.Action
	}
	db.maintMu.Unlock()
	if db.ing != nil {
		db.ing.counters(&out.Ingest)
	}
	// Zone-prune counters live on the index, not the ingester: pruning
	// works on reopened stores whether or not LSM ingest is enabled.
	out.Ingest.ZonePruneChecks, out.Ingest.ZonePrunedRuns = db.ix.ZonePruneCounters()
	cfg := db.ix.Config()
	out.Quantization = cfg.Quantization
	out.ClipPercentile = cfg.ClipPercentile
	ss := db.store.Stats()
	out.Backend = ss.Backend.String()
	out.GateWaits = ss.GateWaits
	out.GateWaitNs = ss.GateWaitNs
	out.CacheBytes = ss.PoolBytes
	out.CacheBudget = db.store.PoolBudget()
	out.CacheHits = ss.PoolHits
	out.CacheMisses = ss.PoolMisses
	out.CacheEvictions = ss.PoolEvictions
	out.WALBytes = ss.WALBytes
	out.FileBytes = int64(ss.PageCount) * int64(db.store.PageSize())
	out.PagesWritten = ss.PagesWritten
	out.Cache = cacheStatsOf(db.cache)
	out.HybridSearches = db.hybridSearches.Load()
	return out, nil
}
