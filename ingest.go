package micronn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"micronn/internal/ivf"
	"micronn/internal/reldb"
	"micronn/internal/storage"
)

// This file is the LSM-shaped ingest path (Options.LSMIngest): a memtable of
// enqueued write operations in front of the WAL'd delta store, drained by a
// dedicated committer goroutine that batches every writer accumulated while
// the previous transaction held the single-writer gate into ONE storage
// transaction — the group commit. Callers block until their group's commit
// and receive its error, so the durability contract is unchanged (an Upsert
// that returned nil is on disk exactly as before); what changes is cost:
// one gate acquisition, one WAL append/sync and one data-generation bump are
// amortized over the whole group instead of paid per point write.
//
// After each group the committer seals the delta store into an immutable
// sorted run (ivf.SealDelta) once it exceeds the memtable bounds, and
// applies backpressure when unmerged rows (delta + runs) outrun compaction:
// past MaxUnmergedItems it kicks a background Maintain (single-flight);
// past HardLimitItems it additionally holds the ingest pipeline briefly so
// compaction can catch up, bounding worst-case search cost.

// ingestOp is one writer's enqueued unit of work: either an upsert batch
// (items + pre-converted attributes, index-aligned) or a delete batch.
// Pre-validation happens at enqueue time so one writer's malformed request
// fails only that writer, never the whole group.
type ingestOp struct {
	items  []Item
	attrs  []map[string]reldb.Value
	dels   []string
	strict bool // Delete (not DeleteBatch): absent ids are an error
	errc   chan error
}

// ingester owns the memtable and the committer goroutine.
type ingester struct {
	db *DB

	// sealItems is the delta-store row count that triggers a seal — the
	// min of Options.MemtableMaxItems and MemtableMaxBytes expressed in
	// rows at this dimensionality.
	sealItems int64
	// maxUnmerged / hardLimit are the backpressure thresholds in unmerged
	// rows (delta + live run rows).
	maxUnmerged int64
	hardLimit   int64

	// declared holds the schema's attribute names for enqueue-time
	// validation (the committer must not discover per-writer mistakes
	// mid-group).
	declared map[string]bool

	mu      sync.Mutex
	pending []*ingestOp
	stopped bool

	wake chan struct{} // buffered(1): writers nudge the committer
	stop chan struct{}
	done chan struct{}

	// Telemetry (read by Stats without locks).
	groupCommits atomic.Uint64
	groupedOps   atomic.Uint64
	maxGroup     atomic.Int64
	seals        atomic.Uint64
	sealedRows   atomic.Int64
	bpTriggers   atomic.Uint64
	bpWaits      atomic.Uint64
	bpWaitNs     atomic.Int64

	// Single-flight background compaction.
	bgActive atomic.Bool
	bgWG     sync.WaitGroup

	// Single-flight background seal (see triggerSeal). sealFailures and
	// lastSealErr surface a persistently failing seal: durability is safe
	// regardless (it lives in the group commit), but unmerged rows would
	// pile up silently.
	sealActive   atomic.Bool
	sealWG       sync.WaitGroup
	sealFailures atomic.Uint64
	sealErrMu    sync.Mutex
	lastSealErr  string
}

// ingestDefaults (see Options).
const (
	defaultMemtableMaxItems = 4096
	defaultMemtableMaxBytes = 4 << 20
)

func newIngester(db *DB) *ingester {
	opts := db.opts
	items := int64(opts.MemtableMaxItems)
	if items <= 0 {
		items = defaultMemtableMaxItems
	}
	bytes := opts.MemtableMaxBytes
	if bytes <= 0 {
		bytes = defaultMemtableMaxBytes
	}
	// The delta store keeps float32 vectors regardless of quantization, so
	// rows-per-byte-budget is bytes / (4*Dim).
	if rowBytes := int64(4 * db.ix.Config().Dim); rowBytes > 0 {
		if byRows := bytes / rowBytes; byRows < items {
			items = byRows
		}
	}
	if items < 1 {
		items = 1
	}
	maxUnmerged := int64(opts.MaxUnmergedItems)
	if maxUnmerged <= 0 {
		maxUnmerged = 4 * items
	}
	hard := int64(opts.HardLimitItems)
	if hard <= 0 {
		hard = 2 * maxUnmerged
	}
	if hard < maxUnmerged {
		hard = maxUnmerged
	}
	declared := make(map[string]bool, len(db.ix.Config().Attributes))
	for _, a := range db.ix.Config().Attributes {
		declared[a.Name] = true
	}
	return &ingester{
		db:          db,
		sealItems:   items,
		maxUnmerged: maxUnmerged,
		hardLimit:   hard,
		declared:    declared,
		wake:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
}

// upsert enqueues an upsert batch and blocks until its group commits.
func (g *ingester) upsert(items []Item) error {
	dim := g.db.ix.Config().Dim
	attrs := make([]map[string]reldb.Value, len(items))
	for i, item := range items {
		if len(item.Vector) != dim {
			return fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(item.Vector), dim)
		}
		a, err := convertAttrs(item.Attributes)
		if err != nil {
			return err
		}
		for name := range a {
			if !g.declared[name] {
				return fmt.Errorf("ivf: undeclared attribute %q", name)
			}
		}
		attrs[i] = a
	}
	return g.enqueue(&ingestOp{items: items, attrs: attrs, errc: make(chan error, 1)})
}

// delete enqueues a delete batch; strict surfaces ErrNotFound for absent
// ids (the single-Delete contract) without failing the rest of the group.
func (g *ingester) delete(ids []string, strict bool) error {
	return g.enqueue(&ingestOp{dels: ids, strict: strict, errc: make(chan error, 1)})
}

func (g *ingester) enqueue(op *ingestOp) error {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return ErrClosed
	}
	g.pending = append(g.pending, op)
	g.mu.Unlock()
	select {
	case g.wake <- struct{}{}:
	default:
	}
	return <-op.errc
}

// run is the committer goroutine: it drains the memtable into group
// commits until shutdown, then commits whatever is still queued (writers
// blocked in enqueue at Close time still get a real answer).
func (g *ingester) run() {
	defer close(g.done)
	for {
		select {
		case <-g.stop:
			g.mu.Lock()
			g.stopped = true
			batch := g.pending
			g.pending = nil
			g.mu.Unlock()
			g.commitGroup(batch)
			return
		case <-g.wake:
			for {
				g.mu.Lock()
				batch := g.pending
				g.pending = nil
				g.mu.Unlock()
				if len(batch) == 0 {
					break
				}
				g.commitGroup(batch)
				g.afterGroup()
			}
		}
	}
}

// commitGroup applies every queued operation in one storage transaction and
// hands each waiter the commit's error. A strict delete of an absent id is
// a per-waiter soft error: that waiter gets ErrNotFound, the group still
// commits (requests were pre-validated, so remaining in-transaction errors
// are storage-level and rightly fail everyone).
func (g *ingester) commitGroup(batch []*ingestOp) {
	if len(batch) == 0 {
		return
	}
	soft := make([]error, len(batch))
	err := g.db.store.Update(func(wt *storage.WriteTxn) error {
		for i, op := range batch {
			soft[i] = nil
			for j, item := range op.items {
				if err := g.db.ix.Upsert(wt, item.ID, item.Vector, op.attrs[j]); err != nil {
					if errors.Is(err, ivf.ErrDimMismatch) {
						return fmt.Errorf("%w: %v", ErrDimMismatch, err)
					}
					return err
				}
			}
			for _, id := range op.dels {
				if err := g.db.ix.Delete(wt, id); err != nil {
					if errors.Is(err, ivf.ErrNotFound) {
						if op.strict {
							soft[i] = ErrNotFound
						}
						continue
					}
					return err
				}
			}
		}
		return nil
	})
	if err == nil {
		g.groupCommits.Add(1)
		g.groupedOps.Add(uint64(len(batch)))
		// Only the committer writes maxGroup; load-compare-store is safe.
		if n := int64(len(batch)); n > g.maxGroup.Load() {
			g.maxGroup.Store(n)
		}
	}
	for i, op := range batch {
		e := err
		if e == nil {
			e = soft[i]
		}
		op.errc <- e
	}
}

// unmerged reads the delta and unmerged row counts at a fresh snapshot.
func (g *ingester) unmerged() (delta, unmerged int64, err error) {
	err = g.db.store.View(func(rt *storage.ReadTxn) error {
		st, e := g.db.ix.Stats(rt)
		if e != nil {
			return e
		}
		delta = st.DeltaCount
		unmerged = st.DeltaCount + st.RunRows
		return nil
	})
	return delta, unmerged, err
}

// afterGroup runs the between-groups policy: hand the delta to the
// background sealer past the memtable bounds, and apply flush backpressure
// when unmerged rows outrun compaction.
func (g *ingester) afterGroup() {
	delta, unmerged, err := g.unmerged()
	if err != nil {
		return
	}
	if g.db.ix.SupportsRuns() && delta >= g.sealItems {
		g.triggerSeal()
	}
	if unmerged < g.maxUnmerged {
		return
	}
	g.triggerMaintain()
	if unmerged < g.hardLimit {
		return
	}
	// Hard limit: hold the pipeline (writers queue in the memtable behind
	// this) until compaction makes headway or a short deadline passes —
	// ingest slows instead of letting search cost grow without bound.
	g.bpWaits.Add(1)
	start := time.Now()
	const hardWait = 250 * time.Millisecond
	for time.Since(start) < hardWait {
		select {
		case <-g.stop:
			g.bpWaitNs.Add(int64(time.Since(start)))
			return
		case <-time.After(5 * time.Millisecond):
		}
		_, u, err := g.unmerged()
		if err != nil || u < g.hardLimit {
			break
		}
		g.triggerMaintain()
	}
	g.bpWaitNs.Add(int64(time.Since(start)))
}

// triggerSeal seals the delta into a sorted run on a background goroutine,
// single-flight, so no group commit ever waits behind the seal
// transaction. The crash contract is unchanged: durability lives in the
// group txn, and the seal runs in its own transaction — after a crash the
// rows are in the delta XOR the run, never torn. Failures are counted and
// the error retained (durability is unaffected, but a seal that fails
// forever must be observable); the next trigger retries.
func (g *ingester) triggerSeal() {
	if !g.sealActive.CompareAndSwap(false, true) {
		return
	}
	g.sealWG.Add(1)
	go func() {
		defer g.sealWG.Done()
		defer g.sealActive.Store(false)
		var sealed int64
		err := g.db.store.Update(func(wt *storage.WriteTxn) error {
			var e error
			sealed, e = g.db.ix.SealDelta(wt)
			return e
		})
		if err != nil {
			if !errors.Is(err, ErrClosed) && !errors.Is(err, storage.ErrClosed) {
				g.sealFailures.Add(1)
				g.sealErrMu.Lock()
				g.lastSealErr = err.Error()
				g.sealErrMu.Unlock()
			}
			return
		}
		if sealed > 0 {
			g.seals.Add(1)
			g.sealedRows.Add(sealed)
		}
	}()
}

// triggerMaintain starts one background maintenance pass unless one started
// here is already running (single-flight; the AutoMaintain loop, if any,
// runs independently).
func (g *ingester) triggerMaintain() {
	if !g.bgActive.CompareAndSwap(false, true) {
		return
	}
	g.bpTriggers.Add(1)
	g.bgWG.Add(1)
	go func() {
		defer g.bgWG.Done()
		defer g.bgActive.Store(false)
		if _, err := g.db.Maintain(); err != nil && !errors.Is(err, ErrClosed) {
			g.db.maintMu.Lock()
			g.db.maintTotals.Errors++
			g.db.maintMu.Unlock()
		}
	}()
}

// shutdown stops the committer (draining queued writers with a final group
// commit) and waits for any background seal or compaction it started — the
// store must not close under an in-flight seal transaction.
func (g *ingester) shutdown() {
	close(g.stop)
	<-g.done
	g.sealWG.Wait()
	g.bgWG.Wait()
}

// IngestStats reports the LSM ingest path. The run/tombstone counts are
// filled from the index whether or not the path is enabled (runs can exist
// from a previous open); the group-commit and backpressure counters are
// cumulative for this handle.
type IngestStats struct {
	// Enabled is true when writes flow through the group committer.
	Enabled bool
	// GroupCommits counts committed groups; GroupedOps the writer calls
	// they carried. GroupedOps/GroupCommits is the achieved batching
	// factor; MaxGroupSize the largest single group.
	GroupCommits uint64
	GroupedOps   uint64
	MaxGroupSize int64
	// Seals counts delta-to-run seals; SealedRows the rows they moved.
	// Seals run on a background goroutine (single-flight); SealFailures
	// counts failed seal transactions and LastSealError keeps the most
	// recent failure's message — durability is unaffected (it lives in the
	// group commit), but a persistently failing seal stalls run formation.
	Seals         uint64
	SealedRows    int64
	SealFailures  uint64
	LastSealError string
	// RunCount / RunRows are the live immutable sorted runs awaiting
	// compaction; TombstoneRows counts deletes shadowing run rows.
	RunCount      int64
	RunRows       int64
	TombstoneRows int64
	// UnmergedItems is delta + run rows — the backpressure signal
	// compared against Options.MaxUnmergedItems.
	UnmergedItems int64
	// BackpressureTriggers counts background compactions kicked by the
	// soft limit; BackpressureWaits/WaitNs the hard-limit pipeline holds.
	BackpressureTriggers uint64
	BackpressureWaits    uint64
	BackpressureWaitNs   int64
	// ZonePruneChecks counts searches' per-run zone/Bloom prune decisions;
	// ZonePrunedRuns how many run scans they skipped (see internal/ivf
	// zone.go). Filled from the index whether or not LSM ingest is enabled.
	ZonePruneChecks int64
	ZonePrunedRuns  int64
}

// counters snapshots the ingester-side counters into st.
func (g *ingester) counters(st *IngestStats) {
	st.Enabled = true
	st.GroupCommits = g.groupCommits.Load()
	st.GroupedOps = g.groupedOps.Load()
	st.MaxGroupSize = g.maxGroup.Load()
	st.Seals = g.seals.Load()
	st.SealedRows = g.sealedRows.Load()
	st.SealFailures = g.sealFailures.Load()
	g.sealErrMu.Lock()
	st.LastSealError = g.lastSealErr
	g.sealErrMu.Unlock()
	st.BackpressureTriggers = g.bpTriggers.Load()
	st.BackpressureWaits = g.bpWaits.Load()
	st.BackpressureWaitNs = g.bpWaitNs.Load()
}
