package micronn

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"micronn/internal/storage"
)

func TestMaintainSplitsInsteadOfRebuild(t *testing.T) {
	db := openTest(t, Options{Dim: 8, TargetPartitionSize: 20, Seed: 1, FlushThreshold: 20})
	seed := randomVecs(1, 300, 8)
	items := make([]Item, len(seed))
	for i, v := range seed {
		items[i] = Item{ID: fmt.Sprintf("v%d", i), Vector: v}
	}
	if err := db.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}

	// Triple the corpus: the legacy monitor would demand a full rebuild,
	// the incremental planner must answer with flushes and splits only.
	extra := randomVecs(2, 600, 8)
	for i, v := range extra {
		if err := db.Upsert(Item{ID: fmt.Sprintf("e%d", i), Vector: v}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := db.Maintain()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rebuilds != 0 {
		t.Errorf("report %+v: built index must not rebuild", rep)
	}
	if rep.Flushes == 0 || rep.Splits == 0 {
		t.Errorf("report %+v: expected flushes and splits", rep)
	}

	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.NeedsRebuild {
		t.Errorf("NeedsRebuild still set after maintenance (avg %.1f)", st.AvgPartitionSize)
	}
	if st.LargestPartition > 40 || st.SmallestPartition < 5 {
		t.Errorf("partition sizes [%d, %d] outside policy bounds [5, 40]", st.SmallestPartition, st.LargestPartition)
	}
	if st.Maintenance.Splits != int64(rep.Splits) {
		t.Errorf("totals %+v do not reflect report %+v", st.Maintenance, rep)
	}
	if err := db.InternalStore().View(func(rt *storage.ReadTxn) error { return db.InternalIndex().CheckInvariants(rt) }); err != nil {
		t.Fatal(err)
	}
}

// TestAutoMaintainConcurrentOps hammers Search/Upsert/Delete from multiple
// goroutines while the background maintainer flushes, splits and merges
// underneath them. Sized to stay fast under the CI `-race -short` job,
// which is where its value lives.
func TestAutoMaintainConcurrentOps(t *testing.T) {
	skipIfEphemeralBackend(t) // bootstrap-then-reopen structure needs persistence
	path := filepath.Join(t.TempDir(), "auto.mnn")

	// Bootstrap and build without the maintainer, so any rebuild observed
	// later is a real policy violation.
	boot, err := Open(path, Options{Dim: 8, TargetPartitionSize: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seed := randomVecs(3, 200, 8)
	items := make([]Item, len(seed))
	for i, v := range seed {
		items[i] = Item{ID: fmt.Sprintf("s%d", i), Vector: v}
	}
	if err := boot.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if _, err := boot.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := boot.Close(); err != nil {
		t.Fatal(err)
	}

	db, err := Open(path, Options{
		TargetPartitionSize: 20, Seed: 1, FlushThreshold: 25,
		AutoMaintain: true, MaintainInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const writerOps = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			queries := randomVecs(int64(10+s), 50, 8)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Search(SearchRequest{Vector: queries[i%len(queries)], K: 5, NProbe: 4}); err != nil {
					fail(fmt.Errorf("searcher %d: %w", s, err))
					return
				}
			}
		}(s)
	}

	deleted := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		vecs := randomVecs(4, writerOps, 8)
		for i, v := range vecs {
			if err := db.Upsert(Item{ID: fmt.Sprintf("w%d", i), Vector: v}); err != nil {
				fail(fmt.Errorf("upsert %d: %w", i, err))
				return
			}
			if i%5 == 4 {
				if err := db.Delete(fmt.Sprintf("w%d", i-2)); err != nil && !errors.Is(err, ErrNotFound) {
					fail(fmt.Errorf("delete %d: %w", i-2, err))
					return
				}
				deleted++
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Drain any remaining backlog and check the final state.
	if _, err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(200 + writerOps - deleted)
	if st.NumVectors != want {
		t.Errorf("NumVectors = %d, want %d", st.NumVectors, want)
	}
	if st.Maintenance.Rebuilds != 0 {
		t.Errorf("background maintainer performed %d rebuilds on a built index", st.Maintenance.Rebuilds)
	}
	if st.Maintenance.Flushes == 0 {
		t.Errorf("totals %+v: expected background flushes", st.Maintenance)
	}
	if err := db.InternalStore().View(func(rt *storage.ReadTxn) error { return db.InternalIndex().CheckInvariants(rt) }); err != nil {
		t.Fatal(err)
	}
}

// TestCloseDrainsMaintainer closes the database the instant it opens; the
// background goroutine must be fully drained, never racing the closed
// store.
func TestCloseDrainsMaintainer(t *testing.T) {
	for i := 0; i < 10; i++ {
		db, err := Open(filepath.Join(t.TempDir(), "drain.mnn"), Options{
			Dim: 4, AutoMaintain: true, MaintainInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Upsert(Item{ID: "x", Vector: []float32{1, 2, 3, 4}}); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
