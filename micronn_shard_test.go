package micronn

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"micronn/internal/storage"
)

// shardTestDim keeps the sharded batteries cheap.
const shardTestDim = 16

// clusteredVecs samples a Gaussian mixture (IVF-friendly, like real
// embedding spaces) deterministically from seed.
func clusteredVecs(seed int64, n, dim, centers int) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	centerVecs := make([][]float32, centers)
	for c := range centerVecs {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64() * 6)
		}
		centerVecs[c] = v
	}
	out := make([][]float32, n)
	for i := range out {
		c := centerVecs[rng.Intn(centers)]
		v := make([]float32, dim)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64())
		}
		out[i] = v
	}
	return out
}

func openShardedTest(t testing.TB, dir string, opts Options) *ShardedDB {
	t.Helper()
	sdb, err := OpenSharded(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdb.Close() })
	return sdb
}

// mirror applies the same randomized op stream to a single-store DB and a
// sharded DB, tracking the expected live set.
type mirror struct {
	t      *testing.T
	single *DB
	shard  *ShardedDB
	live   map[string][]float32
}

func (m *mirror) upsertBatch(items []Item) {
	m.t.Helper()
	if err := m.single.UpsertBatch(items); err != nil {
		m.t.Fatal(err)
	}
	if err := m.shard.UpsertBatch(items); err != nil {
		m.t.Fatal(err)
	}
	for _, it := range items {
		m.live[it.ID] = it.Vector
	}
}

func (m *mirror) delete(id string) {
	m.t.Helper()
	err1 := m.single.Delete(id)
	err2 := m.shard.Delete(id)
	switch {
	case err1 == nil && err2 == nil:
	case errors.Is(err1, ErrNotFound) && errors.Is(err2, ErrNotFound):
	default:
		m.t.Fatalf("delete %q semantics diverge: single=%v sharded=%v", id, err1, err2)
	}
	delete(m.live, id)
}

// recallAgainst measures recall@k of got against the exact ground truth.
func recallAgainst(exact, got []Result) float64 {
	if len(exact) == 0 {
		return 1
	}
	want := make(map[string]bool, len(exact))
	for _, r := range exact {
		want[r.ID] = true
	}
	hits := 0
	for _, r := range got {
		if want[r.ID] {
			hits++
		}
	}
	return float64(hits) / float64(len(exact))
}

// TestShardedEquivalence is the equivalence property test: a randomized
// workload of upserts, deletes and re-upserts is applied identically to a
// single-store DB and a 3-shard DB (float32, SQ8 and SQ4), and the sharded
// Search/BatchSearch recall@10 must stay within 1 point of the single
// store's, measured against exact ground truth; Get and Delete semantics
// must match exactly.
func TestShardedEquivalence(t *testing.T) {
	for _, qt := range []Quantization{QuantNone, QuantSQ8, QuantSQ4} {
		t.Run(qt.String(), func(t *testing.T) {
			const seed = 7
			rng := rand.New(rand.NewSource(seed))
			opts := Options{Dim: shardTestDim, TargetPartitionSize: 25, Seed: seed, Quantization: qt}
			single, err := Open(filepath.Join(t.TempDir(), "single.mnn"), opts)
			if err != nil {
				t.Fatal(err)
			}
			defer single.Close()
			shOpts := opts
			shOpts.Shards = 3
			sharded := openShardedTest(t, filepath.Join(t.TempDir(), "sharded.d"), shOpts)

			m := &mirror{t: t, single: single, shard: sharded, live: make(map[string][]float32)}
			vecs := clusteredVecs(seed, 1200, shardTestDim, 12)
			mkItems := func(lo, hi int) []Item {
				items := make([]Item, 0, hi-lo)
				for i := lo; i < hi; i++ {
					items = append(items, Item{ID: fmt.Sprintf("v%04d", i), Vector: vecs[i]})
				}
				return items
			}

			// Bootstrap, build both, then keep streaming: deletes, fresh
			// inserts, and re-upserts that move existing ids to new vectors.
			m.upsertBatch(mkItems(0, 600))
			if _, err := m.single.Rebuild(); err != nil {
				t.Fatal(err)
			}
			if _, err := m.shard.Rebuild(); err != nil {
				t.Fatal(err)
			}
			m.upsertBatch(mkItems(600, 900))
			for i := 0; i < 150; i++ {
				m.delete(fmt.Sprintf("v%04d", rng.Intn(900)))
			}
			reup := make([]Item, 0, 100)
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("v%04d", rng.Intn(900))
				reup = append(reup, Item{ID: id, Vector: vecs[900+i]})
			}
			m.upsertBatch(reup)
			if _, err := m.single.Maintain(); err != nil {
				t.Fatal(err)
			}
			if _, err := m.shard.Maintain(); err != nil {
				t.Fatal(err)
			}

			// Counts must agree exactly.
			st1, err := m.single.Stats()
			if err != nil {
				t.Fatal(err)
			}
			st2, err := m.shard.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st1.NumVectors != st2.NumVectors || st1.NumVectors != int64(len(m.live)) {
				t.Fatalf("NumVectors: single %d, sharded %d, mirror %d", st1.NumVectors, st2.NumVectors, len(m.live))
			}
			if err := sharded.CheckInvariants(); err != nil {
				t.Fatal(err)
			}

			// Search equivalence: recall@10 against exact ground truth, the
			// sharded store within 1 point of the single store.
			queries := clusteredVecs(seed+1, 30, shardTestDim, 12)
			var singleRecall, shardRecall float64
			for _, q := range queries {
				exact, err := m.single.Search(SearchRequest{Vector: q, K: 10, Exact: true})
				if err != nil {
					t.Fatal(err)
				}
				exactSh, err := m.shard.Search(SearchRequest{Vector: q, K: 10, Exact: true})
				if err != nil {
					t.Fatal(err)
				}
				if r := recallAgainst(exact.Results, exactSh.Results); r != 1 {
					t.Fatalf("sharded exact search disagrees with single store (recall %.2f)", r)
				}
				r1, err := m.single.Search(SearchRequest{Vector: q, K: 10, NProbe: 8})
				if err != nil {
					t.Fatal(err)
				}
				r2, err := m.shard.Search(SearchRequest{Vector: q, K: 10, NProbe: 8})
				if err != nil {
					t.Fatal(err)
				}
				singleRecall += recallAgainst(exact.Results, r1.Results)
				shardRecall += recallAgainst(exact.Results, r2.Results)
			}
			singleRecall /= float64(len(queries))
			shardRecall /= float64(len(queries))
			if shardRecall < singleRecall-0.01 {
				t.Errorf("sharded recall@10 %.3f more than 1pt below single-store %.3f", shardRecall, singleRecall)
			}

			// BatchSearch equivalence under the same gate.
			breq := BatchSearchRequest{Vectors: queries, K: 10, NProbe: 8}
			b1, err := m.single.BatchSearch(breq)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := m.shard.BatchSearch(breq)
			if err != nil {
				t.Fatal(err)
			}
			var batchSingle, batchShard float64
			for qi, q := range queries {
				exact, err := m.single.Search(SearchRequest{Vector: q, K: 10, Exact: true})
				if err != nil {
					t.Fatal(err)
				}
				batchSingle += recallAgainst(exact.Results, b1.Results[qi])
				batchShard += recallAgainst(exact.Results, b2.Results[qi])
			}
			batchSingle /= float64(len(queries))
			batchShard /= float64(len(queries))
			if batchShard < batchSingle-0.01 {
				t.Errorf("sharded batch recall@10 %.3f more than 1pt below single-store %.3f", batchShard, batchSingle)
			}

			// Get semantics: every live id returns the same vector from both
			// stores; a deleted id is ErrNotFound on both.
			checked := 0
			for id, want := range m.live {
				if checked >= 50 {
					break
				}
				checked++
				g1, err := m.single.Get(id)
				if err != nil {
					t.Fatalf("single Get(%q): %v", id, err)
				}
				g2, err := m.shard.Get(id)
				if err != nil {
					t.Fatalf("sharded Get(%q): %v", id, err)
				}
				for j := range want {
					if g1.Vector[j] != want[j] || g2.Vector[j] != want[j] {
						t.Fatalf("Get(%q) vector mismatch at dim %d", id, j)
					}
				}
			}
			if _, err := m.shard.Get("never-existed"); !errors.Is(err, ErrNotFound) {
				t.Errorf("sharded Get(absent) = %v, want ErrNotFound", err)
			}
			if err := m.shard.Delete("never-existed"); !errors.Is(err, ErrNotFound) {
				t.Errorf("sharded Delete(absent) = %v, want ErrNotFound", err)
			}
		})
	}
}

// TestShardedTopologyValidation proves reopen validates the manifest: a
// mismatched shard count, a missing shard directory and a stray shard
// directory must all fail fast, while Shards=0 reopens cleanly.
func TestShardedTopologyValidation(t *testing.T) {
	skipIfEphemeralBackend(t)
	dir := filepath.Join(t.TempDir(), "topo.d")
	sdb, err := OpenSharded(dir, Options{Dim: 8, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sdb.Upsert(Item{ID: "a", Vector: make([]float32, 8)}); err != nil {
		t.Fatal(err)
	}
	if err := sdb.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenSharded(dir, Options{Shards: 3}); err == nil {
		t.Fatal("reopen with mismatched shard count should fail")
	}

	stray := storage.ShardDir(dir, 5)
	if err := os.MkdirAll(stray, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(dir, Options{}); err == nil {
		t.Fatal("reopen with a stray shard directory should fail")
	}
	if err := os.RemoveAll(stray); err != nil {
		t.Fatal(err)
	}

	moved := filepath.Join(dir, "hidden")
	if err := os.Rename(storage.ShardDir(dir, 1), moved); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(dir, Options{}); err == nil {
		t.Fatal("reopen with a missing shard directory should fail")
	}
	if err := os.Rename(moved, storage.ShardDir(dir, 1)); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenSharded(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	item, err := reopened.Get("a")
	if err != nil || item.ID != "a" {
		t.Fatalf("Get after reopen: %+v, %v", item, err)
	}
	if reopened.Shards() != 2 {
		t.Errorf("Shards() = %d, want 2", reopened.Shards())
	}
}

// TestShardedCreateRetryAfterCrash proves creation is crash-repairable: the
// manifest commits creation last, so a create killed mid-way leaves a
// manifest-less directory that plain reopens reject but the same create
// call completes (existing shard stores just reopen).
func TestShardedCreateRetryAfterCrash(t *testing.T) {
	skipIfEphemeralBackend(t)
	dir := filepath.Join(t.TempDir(), "retry.d")
	sdb, err := OpenSharded(dir, Options{Dim: 8, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sdb.Close(); err != nil {
		t.Fatal(err)
	}
	// Rewind to the on-disk state of a create killed before the manifest
	// commit and before shard 2's store existed.
	if err := os.Remove(filepath.Join(dir, storage.ManifestName)); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(storage.ShardDir(dir, 2)); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenSharded(dir, Options{}); err == nil {
		t.Fatal("reopen without create options should fail on a half-created directory")
	}
	// A retry with a smaller shard count must refuse the leftover shard
	// directories rather than commit a manifest that undercounts them
	// (which would make every later open fail the topology check).
	if _, err := OpenSharded(dir, Options{Dim: 8, Shards: 1}); err == nil {
		t.Fatal("create retry with fewer shards should refuse leftover shard directories")
	}
	retried, err := OpenSharded(dir, Options{Dim: 8, Shards: 3})
	if err != nil {
		t.Fatalf("create retry: %v", err)
	}
	defer retried.Close()
	if err := retried.Upsert(Item{ID: "x", Vector: make([]float32, 8)}); err != nil {
		t.Fatal(err)
	}
	if err := retried.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRoutingSpread proves the hash spreads ids over every shard and
// that placement passes the cross-shard invariant check.
func TestShardedRoutingSpread(t *testing.T) {
	sdb := openShardedTest(t, filepath.Join(t.TempDir(), "spread.d"), Options{Dim: 8, Shards: 4, Seed: 3})
	vecs := randomVecs(3, 400, 8)
	items := make([]Item, len(vecs))
	for i, v := range vecs {
		items[i] = Item{ID: fmt.Sprintf("id-%d", i), Vector: v}
	}
	if err := sdb.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	per, err := sdb.ShardStats()
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range per {
		if st.NumVectors == 0 {
			t.Errorf("shard %d received no vectors", i)
		}
	}
	if err := sdb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedSnapshot pins per-shard horizons: writes after Snapshot must
// stay invisible to it while the live handle sees them.
func TestShardedSnapshot(t *testing.T) {
	sdb := openShardedTest(t, filepath.Join(t.TempDir(), "snap.d"), Options{Dim: 8, Shards: 2, Seed: 5})
	vecs := randomVecs(5, 100, 8)
	items := make([]Item, len(vecs))
	for i, v := range vecs {
		items[i] = Item{ID: fmt.Sprintf("s-%d", i), Vector: v}
	}
	if err := sdb.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if _, err := sdb.Rebuild(); err != nil {
		t.Fatal(err)
	}

	snap, err := sdb.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	if err := sdb.Upsert(Item{ID: "late", Vector: vecs[0]}); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Get("late"); !errors.Is(err, ErrNotFound) {
		t.Errorf("snapshot sees post-snapshot write: %v", err)
	}
	if _, err := sdb.Get("late"); err != nil {
		t.Errorf("live handle misses committed write: %v", err)
	}
	st, err := snap.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVectors != 100 {
		t.Errorf("snapshot NumVectors = %d, want 100", st.NumVectors)
	}
	resp, err := snap.Search(SearchRequest{Vector: vecs[1], K: 5, NProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Error("snapshot search returned nothing")
	}
	bresp, err := snap.BatchSearch(BatchSearchRequest{Vectors: vecs[:4], K: 5, NProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(bresp.Results) != 4 {
		t.Errorf("snapshot batch returned %d result lists, want 4", len(bresp.Results))
	}
}

// TestShardedConcurrentOps is the sharded -race hammer: Search, BatchSearch,
// Upsert, Delete and Stats run concurrently across goroutines while every
// shard's background maintainer flushes, splits and merges underneath them.
// Sized for the CI `-race -short` job.
func TestShardedConcurrentOps(t *testing.T) {
	skipIfEphemeralBackend(t) // bootstrap-then-reopen structure needs persistence
	dir := filepath.Join(t.TempDir(), "hammer.d")

	// Bootstrap and build without maintainers so later rebuilds would be a
	// policy violation.
	boot, err := OpenSharded(dir, Options{Dim: 8, Shards: 3, TargetPartitionSize: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seed := clusteredVecs(3, 300, 8, 8)
	items := make([]Item, len(seed))
	for i, v := range seed {
		items[i] = Item{ID: fmt.Sprintf("s%d", i), Vector: v}
	}
	if err := boot.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if _, err := boot.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := boot.Close(); err != nil {
		t.Fatal(err)
	}

	sdb, err := OpenSharded(dir, Options{
		TargetPartitionSize: 20, Seed: 1, FlushThreshold: 25,
		AutoMaintain: true, MaintainInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()

	const writerOps = 300
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 8)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			queries := clusteredVecs(int64(10+s), 40, 8, 8)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := sdb.Search(SearchRequest{Vector: queries[i%len(queries)], K: 5, NProbe: 4}); err != nil {
					fail(fmt.Errorf("searcher %d: %w", s, err))
					return
				}
			}
		}(s)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		queries := clusteredVecs(20, 16, 8, 8)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sdb.BatchSearch(BatchSearchRequest{Vectors: queries, K: 5, NProbe: 4}); err != nil {
				fail(fmt.Errorf("batch searcher: %w", err))
				return
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sdb.Stats(); err != nil {
				fail(fmt.Errorf("stats: %w", err))
				return
			}
		}
	}()

	deleted := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		vecs := clusteredVecs(4, writerOps, 8, 8)
		for i, v := range vecs {
			if err := sdb.Upsert(Item{ID: fmt.Sprintf("w%d", i), Vector: v}); err != nil {
				fail(fmt.Errorf("upsert %d: %w", i, err))
				return
			}
			if i%5 == 4 {
				if err := sdb.Delete(fmt.Sprintf("w%d", i-2)); err != nil && !errors.Is(err, ErrNotFound) {
					fail(fmt.Errorf("delete %d: %w", i-2, err))
					return
				}
				deleted++
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if _, err := sdb.Maintain(); err != nil {
		t.Fatal(err)
	}
	st, err := sdb.Stats()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(300 + writerOps - deleted)
	if st.NumVectors != want {
		t.Errorf("NumVectors = %d, want %d", st.NumVectors, want)
	}
	if st.Maintenance.Rebuilds != 0 {
		t.Errorf("background maintainers performed %d rebuilds on built indexes", st.Maintenance.Rebuilds)
	}
	if err := sdb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
