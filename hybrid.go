package micronn

import (
	"math"
	"sort"

	"micronn/internal/fts"
	"micronn/internal/ivf"
	"micronn/internal/rescache"
	"micronn/internal/storage"
	"micronn/internal/token"
)

// This file is the hybrid (lexical + vector) query subsystem: one request
// runs a BM25-scored full-text leg and the usual ANN vector leg under a
// single read snapshot and fuses the two rankings. See the package
// documentation's "Hybrid search" section for the semantics.

// defaultFusionK is the reciprocal-rank fusion constant (the conventional
// RRF k=60).
const defaultFusionK = 60

// HybridRequest parameterizes HybridSearch. The vector-leg fields (Vector,
// K, NProbe, Filters, Exact, Plan, RerankFactor, NoCache) follow
// SearchRequest exactly; the remaining fields drive the lexical leg and the
// fusion step.
type HybridRequest struct {
	// Vector is the query embedding (required).
	Vector []float32
	// Text is the lexical query, tokenized and BM25-scored against TextCol's
	// full-text index. Empty Text degrades the request to a pure vector
	// query whose results are identical to Search.
	Text string
	// TextCol names the FullText attribute the lexical leg runs over.
	// Defaults to the store's sole full-text attribute; required when the
	// store indexes several.
	TextCol string
	// K is the fused result count (default 10). Each leg also retrieves K
	// candidates before fusion.
	K int
	// NProbe is the vector leg's IVF probe count (default 8).
	NProbe int
	// Filters is the conjunctive attribute filter set applied to the vector
	// leg (optional). The lexical leg is unfiltered: it ranks by text alone.
	Filters []Filter
	// Exact forces an exhaustive vector leg.
	Exact bool
	// Plan overrides the vector leg's hybrid-filter optimizer.
	Plan PlanType
	// RerankFactor overrides the quantized rerank multiplier.
	RerankFactor int
	// FusionK is the reciprocal-rank fusion constant (default 60). Larger
	// values flatten the rank discount, weighting deep results more evenly.
	FusionK int
	// Weighted switches from reciprocal-rank fusion to weighted score
	// fusion: VectorWeight·(1/(1+distance)) + TextWeight·(BM25/maxBM25).
	// Setting one weight to zero yields a single-leg ranking, which the
	// bench harness uses to measure lexical-only recall.
	Weighted bool
	// VectorWeight and TextWeight are the weighted-mode leg weights
	// (default 0.5 each when Weighted and both are zero).
	VectorWeight float64
	TextWeight   float64
	// NoCache bypasses the result cache for this query.
	NoCache bool
}

// vectorRequest projects the request's vector leg onto a SearchRequest.
func (r HybridRequest) vectorRequest() SearchRequest {
	return SearchRequest{
		Vector: r.Vector, K: r.K, NProbe: r.NProbe, Filters: r.Filters,
		Exact: r.Exact, Plan: r.Plan, RerankFactor: r.RerankFactor,
		NoCache: r.NoCache,
	}
}

// HybridResult is one fused result.
type HybridResult struct {
	// ID is the asset id.
	ID string
	// Score is the fused score (higher is better): the RRF sum by default,
	// the weighted combination under HybridRequest.Weighted.
	Score float64
	// Distance is the exact (full-precision) vector distance to the query,
	// computed via the raw-vector path on quantized stores — present for
	// every result, including ones only the lexical leg surfaced.
	Distance float32
	// TextScore is the BM25 score (0 when the lexical leg did not rank it).
	TextScore float64
	// VectorRank and TextRank are the result's 1-based ranks within each
	// leg; 0 means the leg did not retrieve it.
	VectorRank int
	TextRank   int
}

// HybridResponse carries fused results plus the vector leg's execution
// details.
type HybridResponse struct {
	Results []HybridResult
	// Plan describes the vector leg (the lexical leg has no plan choice).
	Plan PlanInfo
}

// hybridFromSearch wraps a pure vector response (empty Text) so HybridSearch
// with no lexical query returns results byte-identical to Search, scored as
// a single-leg RRF list.
func hybridFromSearch(resp *SearchResponse) *HybridResponse {
	out := make([]HybridResult, len(resp.Results))
	for i, r := range resp.Results {
		out[i] = HybridResult{
			ID:         r.ID,
			Score:      1 / float64(defaultFusionK+i+1),
			Distance:   r.Distance,
			VectorRank: i + 1,
		}
	}
	return &HybridResponse{Results: out, Plan: resp.Plan}
}

// fuseHybrid combines the two leg rankings into the final top-K. Both input
// lists are globally ordered (the sharded router merges before fusing), so
// ranks — and therefore fused scores — are identical for sharded and
// single-store executions over the same corpus. Ties break on ascending
// asset id, a total order, keeping the output deterministic.
func fuseHybrid(req HybridRequest, vec []Result, lex []ivf.LexicalDoc) []HybridResult {
	idx := make(map[string]int, len(vec)+len(lex))
	cands := make([]HybridResult, 0, len(vec)+len(lex))
	for i, r := range vec {
		idx[r.ID] = len(cands)
		cands = append(cands, HybridResult{ID: r.ID, Distance: r.Distance, VectorRank: i + 1})
	}
	var maxText float64
	for i, d := range lex {
		if d.Score > maxText {
			maxText = d.Score
		}
		if j, ok := idx[d.AssetID]; ok {
			cands[j].TextRank = i + 1
			cands[j].TextScore = d.Score
			continue
		}
		idx[d.AssetID] = len(cands)
		cands = append(cands, HybridResult{
			ID: d.AssetID, Distance: d.Distance, TextScore: d.Score, TextRank: i + 1,
		})
	}
	for i := range cands {
		c := &cands[i]
		if req.Weighted {
			vs := 1 / (1 + math.Max(float64(c.Distance), 0))
			var ts float64
			if c.TextRank > 0 && maxText > 0 {
				ts = c.TextScore / maxText
			}
			c.Score = req.VectorWeight*vs + req.TextWeight*ts
			continue
		}
		if c.VectorRank > 0 {
			c.Score += 1 / float64(req.FusionK+c.VectorRank)
		}
		if c.TextRank > 0 {
			c.Score += 1 / float64(req.FusionK+c.TextRank)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].ID < cands[j].ID
	})
	if len(cands) > req.K {
		cands = cands[:req.K]
	}
	return cands
}

// hybridAt runs the fused query at rt's snapshot (the uncached single-store
// core): both legs read the same pinned state, so a concurrent writer can
// never skew one leg against the other.
func (db *DB) hybridAt(rt *storage.ReadTxn, req HybridRequest) (*HybridResponse, error) {
	vecResp, err := db.searchAt(rt, req.vectorRequest())
	if err != nil {
		return nil, err
	}
	toks := token.Unique(req.Text)
	gs, err := db.ix.LexicalStats(rt, req.TextCol, toks)
	if err != nil {
		return nil, err
	}
	lex, err := db.ix.LexicalSearch(rt, req.TextCol, req.Vector, toks, gs, req.K)
	if err != nil {
		return nil, err
	}
	return &HybridResponse{
		Results: fuseHybrid(req, vecResp.Results, lex),
		Plan:    vecResp.Plan,
	}, nil
}

// HybridSearch runs a fused lexical + vector query (see the package doc's
// "Hybrid search" section). With empty Text it is equivalent to Search.
func (db *DB) HybridSearch(req HybridRequest) (*HybridResponse, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	if err := db.normalizeHybrid(&req); err != nil {
		return nil, err
	}
	db.hybridSearches.Add(1)
	if req.Text == "" {
		resp, err := db.Search(req.vectorRequest())
		if err != nil {
			return nil, err
		}
		return hybridFromSearch(resp), nil
	}
	if db.cache == nil || req.NoCache {
		var resp *HybridResponse
		err := db.store.View(func(rt *storage.ReadTxn) error {
			var herr error
			resp, herr = db.hybridAt(rt, req)
			return herr
		})
		return resp, err
	}
	return cachedQuery(db, db.hybridCacheKey(req), cloneHybridResponse, hybridResponseSize,
		func(resp *HybridResponse) rescache.PutPolicy { return hybridPutPolicy(len(req.Filters), resp) },
		func(rt *storage.ReadTxn) (*HybridResponse, error) { return db.hybridAt(rt, req) })
}

// HybridSearch runs the fused query against the pinned state (same
// semantics as DB.HybridSearch, never cached — snapshots answer from their
// own horizon).
func (s *Snapshot) HybridSearch(req HybridRequest) (*HybridResponse, error) {
	if err := s.db.normalizeHybrid(&req); err != nil {
		return nil, err
	}
	s.db.hybridSearches.Add(1)
	if req.Text == "" {
		resp, err := s.db.searchAt(s.rt, req.vectorRequest())
		if err != nil {
			return nil, err
		}
		return hybridFromSearch(resp), nil
	}
	return s.db.hybridAt(s.rt, req)
}

// hybridCacheKey fingerprints the request in canonical form: the vector-leg
// knobs canonicalize exactly like searchCacheKey, and the lexical/fusion
// parameters join the fingerprint (rescache tokenizes Text, so queries
// equal after tokenization share one entry).
func (db *DB) hybridCacheKey(req HybridRequest) rescache.Key {
	return rescache.KeyOf(rescache.Request{
		Kind:         rescache.KindHybrid,
		K:            req.K,
		NProbe:       db.canonNProbe(req.NProbe, req.Exact),
		RerankFactor: db.canonRerank(req.RerankFactor, req.Exact),
		Plan:         canonPlan(req.Plan, req.Filters),
		Exact:        req.Exact,
		Vectors:      [][]float32{req.Vector},
		Filters:      req.Filters,
		Text:         req.Text,
		TextCol:      req.TextCol,
		FusionK:      req.FusionK,
		Weighted:     req.Weighted,
		VectorWeight: req.VectorWeight,
		TextWeight:   req.TextWeight,
	})
}

func cloneHybridResponse(r *HybridResponse) *HybridResponse {
	return &HybridResponse{Results: append([]HybridResult(nil), r.Results...), Plan: r.Plan}
}

func hybridResponseSize(r *HybridResponse) int64 {
	n := int64(96)
	for _, res := range r.Results {
		n += 64 + int64(len(res.ID))
	}
	return n
}

// hybridPutPolicy classifies a hybrid response for cache admission (same
// rules as plain searches).
func hybridPutPolicy(nFilters int, resp *HybridResponse) rescache.PutPolicy {
	return rescache.PutPolicy{
		FilterHeavy: nFilters >= filterHeavyFilters,
		Negative:    len(resp.Results) == 0,
	}
}

// --- sharded ---

// HybridSearch scatters both legs to every shard and fuses globally (same
// semantics as DB.HybridSearch). BM25 statistics are aggregated across the
// shard set before any shard scores, so the lexical ranking — and therefore
// the fused ranking — is identical to a single store holding the same
// corpus.
func (s *ShardedDB) HybridSearch(req HybridRequest) (*HybridResponse, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	if err := s.normalizeHybrid(&req); err != nil {
		return nil, err
	}
	s.hybridSearches.Add(1)
	if req.Text == "" {
		resp, err := s.Search(req.vectorRequest())
		if err != nil {
			return nil, err
		}
		return hybridFromSearch(resp), nil
	}
	rts, err := s.beginReads()
	if err != nil {
		return nil, err
	}
	defer closeReads(rts)
	if s.cache == nil || req.NoCache {
		return s.hybridCompute(rts, req)
	}
	key := s.shards[0].hybridCacheKey(req)
	gens, err := s.readGens(rts)
	if err != nil {
		return nil, err
	}
	if v, _, out := s.cache.Get(key, gens); out == rescache.Hit {
		return cloneHybridResponse(v.(*HybridResponse)), nil
	}
	return cachedShardedQuery(s, key, gens, cloneHybridResponse, func() (*HybridResponse, []int64, error) {
		return s.cachedHybridOn(rts, req, key, gens, false, true)
	})
}

// hybridOn is the pinned-transaction entry point shared with
// ShardedSnapshot.HybridSearch: consult the cache against the pinned
// horizons (store=false — snapshot generations must not displace live
// entries), recompute on miss.
func (s *ShardedDB) hybridOn(rts []*storage.ReadTxn, req HybridRequest) (*HybridResponse, error) {
	if err := s.normalizeHybrid(&req); err != nil {
		return nil, err
	}
	if req.Text == "" {
		resp, err := s.searchOn(rts, req.vectorRequest())
		if err != nil {
			return nil, err
		}
		return hybridFromSearch(resp), nil
	}
	if s.cache == nil || req.NoCache {
		return s.hybridCompute(rts, req)
	}
	gens, err := s.readGens(rts)
	if err != nil {
		return nil, err
	}
	resp, _, err := s.cachedHybridOn(rts, req, s.shards[0].hybridCacheKey(req), gens, true, false)
	if err != nil {
		return nil, err
	}
	return cloneHybridResponse(resp), nil
}

// cachedHybridOn validates, serves or recomputes a hybrid query at rts'
// snapshots (the hybrid analog of cachedSearchOn). Hybrid entries cache the
// merged response only — a stale entry recomputes both legs in full.
func (s *ShardedDB) cachedHybridOn(rts []*storage.ReadTxn, req HybridRequest, key rescache.Key, gens []int64, counted, store bool) (*HybridResponse, []int64, error) {
	var v any
	var out rescache.Outcome
	if counted {
		v, _, out = s.cache.Get(key, gens)
	} else {
		v, _, out = s.cache.Lookup(key, gens)
	}
	if out == rescache.Hit {
		return v.(*HybridResponse), gens, nil
	}
	resp, err := s.hybridCompute(rts, req)
	if err != nil {
		return nil, nil, err
	}
	if store {
		s.cache.PutWithPolicy(key, gens, resp, hybridResponseSize(resp),
			hybridPutPolicy(len(req.Filters), resp))
	}
	return resp, gens, nil
}

// hybridCompute runs both legs across the shard set at the pinned
// transactions. The lexical leg is two-phase: (1) every shard reports its
// local df/N/length statistics, which the router sums into the global
// corpus view; (2) every shard BM25-scores its local postings USING the
// global statistics and returns its top K, which the router merges. Phase 2
// scoring with global figures is what makes per-shard scores — not just
// ranks — comparable, so the merged ranking equals a single store's.
func (s *ShardedDB) hybridCompute(rts []*storage.ReadTxn, req HybridRequest) (*HybridResponse, error) {
	outs, err := s.searchScatter(rts, req.vectorRequest(), nil)
	if err != nil {
		return nil, err
	}
	vecResp, err := s.searchMerge(rts, req.vectorRequest(), outs)
	if err != nil {
		return nil, err
	}

	toks := token.Unique(req.Text)
	perStats := make([]fts.BM25Stats, len(s.shards))
	err = s.scatter(func(i int, sh *DB) error {
		st, serr := sh.ix.LexicalStats(rts[i], req.TextCol, toks)
		perStats[i] = st
		return serr
	})
	if err != nil {
		return nil, err
	}
	var global fts.BM25Stats
	for _, st := range perStats {
		global.Merge(st)
	}

	perLex := make([][]ivf.LexicalDoc, len(s.shards))
	err = s.scatter(func(i int, sh *DB) error {
		docs, serr := sh.ix.LexicalSearch(rts[i], req.TextCol, req.Vector, toks, global, req.K)
		perLex[i] = docs
		return serr
	})
	if err != nil {
		return nil, err
	}
	lex := mergeLexical(perLex, req.K)

	return &HybridResponse{
		Results: fuseHybrid(req, vecResp.Results, lex),
		Plan:    vecResp.Plan,
	}, nil
}

// mergeLexical merges per-shard BM25 top-K lists into the global top-K,
// ordered by (score desc, asset id asc) — the same total order every shard
// (and a single store) cuts by, so the merged list equals a single store's.
func mergeLexical(per [][]ivf.LexicalDoc, k int) []ivf.LexicalDoc {
	var all []ivf.LexicalDoc
	for _, docs := range per {
		all = append(all, docs...)
	}
	sortLexical(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// sortLexical orders docs by descending BM25 score, ties by ascending asset
// id (asset ids are globally unique, so this is a total order — vids are
// not comparable across topologies and must not be used here).
func sortLexical(docs []ivf.LexicalDoc) {
	sort.Slice(docs, func(i, j int) bool {
		if docs[i].Score != docs[j].Score {
			return docs[i].Score > docs[j].Score
		}
		return docs[i].AssetID < docs[j].AssetID
	})
}

// HybridSearch runs the fused query against the pinned shard snapshots.
func (s *ShardedSnapshot) HybridSearch(req HybridRequest) (*HybridResponse, error) {
	s.db.hybridSearches.Add(1)
	return s.db.hybridOn(s.rts, req)
}
