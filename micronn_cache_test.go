package micronn

// The result-cache proof battery.
//
//   - TestCacheStalenessOracle: seeded randomized interleavings of
//     Search/BatchSearch/Upsert/Delete/Maintain/FlushDelta/Rebuild on
//     single-store and sharded databases, float32 and SQ8. After every
//     mutation, cached responses are compared against a cache-off oracle
//     run of the same request at the same moment — byte-identical results
//     required, every time. Failures log the schedule seed; re-run with
//     MICRONN_CACHE_SEED=<seed>.
//   - TestCacheRaceHammer: concurrent hot searches + writes + maintenance
//     on a 4-shard cached database under -race.
//   - TestShardedCachePartialReuse: a point write moves one shard's
//     generation; the repeat re-scans only that shard.
//   - TestDropCachesClearsResultCache: the DropCaches regression fix.
//   - TestCacheEnvOverride: the MICRONN_TEST_CACHE=1 matrix override.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"
)

// cacheOracleSeed returns the battery's base seed: MICRONN_CACHE_SEED when
// set (exact repro), a time-derived seed otherwise. It is always logged.
func cacheOracleSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("MICRONN_CACHE_SEED"); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad MICRONN_CACHE_SEED %q: %v", s, err)
		}
		t.Logf("cache oracle seed %d (from MICRONN_CACHE_SEED)", seed)
		return seed
	}
	seed := time.Now().UnixNano()
	t.Logf("cache oracle seed %d (repro: MICRONN_CACHE_SEED=%d)", seed, seed)
	return seed
}

// sameResults requires got and want to be byte-identical hit lists.
func sameResults(t *testing.T, tag string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: cached returned %d results, oracle %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Distance != want[i].Distance {
			t.Fatalf("%s: result %d diverged: cached (%s, %v) vs oracle (%s, %v)",
				tag, i, got[i].ID, got[i].Distance, want[i].ID, want[i].Distance)
		}
	}
}

func cacheStatsOfStore(t *testing.T, db Store) CacheStats {
	t.Helper()
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st.Cache
}

// oracleCheck issues req cached twice and uncached once at a quiesced
// moment and requires all three responses identical: the first cached call
// fills or revalidates the entry, the second must serve from cache, the
// NoCache run is ground truth.
func oracleCheck(t *testing.T, db Store, tag string, req SearchRequest) {
	t.Helper()
	first, err := db.Search(req)
	if err != nil {
		t.Fatalf("%s: cached search: %v", tag, err)
	}
	second, err := db.Search(req)
	if err != nil {
		t.Fatalf("%s: cached repeat: %v", tag, err)
	}
	oracle := req
	oracle.NoCache = true
	want, err := db.Search(oracle)
	if err != nil {
		t.Fatalf("%s: oracle search: %v", tag, err)
	}
	sameResults(t, tag+"/first", first.Results, want.Results)
	sameResults(t, tag+"/repeat", second.Results, want.Results)
}

func oracleBatchCheck(t *testing.T, db Store, tag string, req BatchSearchRequest) {
	t.Helper()
	got, err := db.BatchSearch(req)
	if err != nil {
		t.Fatalf("%s: cached batch: %v", tag, err)
	}
	oracle := req
	oracle.NoCache = true
	want, err := db.BatchSearch(oracle)
	if err != nil {
		t.Fatalf("%s: oracle batch: %v", tag, err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: cached batch returned %d result lists, oracle %d", tag, len(got.Results), len(want.Results))
	}
	for qi := range got.Results {
		sameResults(t, fmt.Sprintf("%s/q%d", tag, qi), got.Results[qi], want.Results[qi])
	}
}

// runCacheOracle drives one configuration through `schedules` seeded
// randomized interleavings.
func runCacheOracle(t *testing.T, qt Quantization, shards int, baseSeed int64, schedules int) {
	dim := shardTestDim
	opts := Options{
		Dim:                 dim,
		TargetPartitionSize: 24,
		Seed:                baseSeed,
		Quantization:        qt,
		Attributes:          []AttributeDef{{Name: "grp", Type: AttrInt, Indexed: true}},
		ResultCache:         ResultCacheOptions{Enabled: true},
	}
	var db Store
	if shards > 0 {
		opts.Shards = shards
		db = openShardedTest(t, filepath.Join(t.TempDir(), "oracle.d"), opts)
	} else {
		d, err := Open(filepath.Join(t.TempDir(), "oracle.mnn"), opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		db = d
	}

	const corpus = 200
	vecs := clusteredVecs(baseSeed, corpus, dim, 6)
	items := make([]Item, corpus)
	for i := range items {
		items[i] = Item{
			ID:         fmt.Sprintf("a%04d", i),
			Vector:     vecs[i],
			Attributes: map[string]any{"grp": int64(i % 5)},
		}
	}
	if err := db.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}

	// A small pool of hot queries: repeats are the workload the cache
	// exists for, and repeats are what exposes staleness.
	queries := clusteredVecs(baseSeed+1, 6, dim, 6)

	nextID := corpus
	for sched := 0; sched < schedules; sched++ {
		seed := baseSeed + int64(sched)*7919
		rng := rand.New(rand.NewSource(seed))
		tag := fmt.Sprintf("schedule %d (seed %d)", sched, seed)
		steps := 6 + rng.Intn(6)
		for step := 0; step < steps; step++ {
			stag := fmt.Sprintf("%s step %d", tag, step)
			switch op := rng.Intn(10); {
			case op < 4: // upsert batch: mix of fresh ids and overwrites
				n := 1 + rng.Intn(5)
				batch := make([]Item, n)
				for j := range batch {
					var id string
					if rng.Intn(3) == 0 {
						id = fmt.Sprintf("a%04d", rng.Intn(corpus))
					} else {
						id = fmt.Sprintf("a%04d", nextID)
						nextID++
					}
					// Perturb the base vector so no two items are ever
					// bit-identical: exact distance ties at the K boundary
					// are resolved nondeterministically by the parallel
					// scans (a pre-existing engine property, orthogonal to
					// cache staleness), and the oracle demands
					// byte-identical responses.
					v := append([]float32(nil), vecs[rng.Intn(corpus)]...)
					for d := range v {
						v[d] += float32(rng.NormFloat64()) * 0.01
					}
					batch[j] = Item{
						ID:         id,
						Vector:     v,
						Attributes: map[string]any{"grp": int64(rng.Intn(5))},
					}
				}
				if err := db.UpsertBatch(batch); err != nil {
					t.Fatalf("%s: upsert: %v", stag, err)
				}
			case op < 6: // delete (possibly absent: DeleteBatch tolerates)
				if err := db.DeleteBatch([]string{fmt.Sprintf("a%04d", rng.Intn(nextID))}); err != nil {
					t.Fatalf("%s: delete: %v", stag, err)
				}
			case op < 8: // incremental maintenance
				if _, err := db.Maintain(); err != nil {
					t.Fatalf("%s: maintain: %v", stag, err)
				}
			case op < 9: // explicit flush
				if _, err := db.FlushDelta(); err != nil {
					t.Fatalf("%s: flush: %v", stag, err)
				}
			default: // full rebuild (rare)
				if _, err := db.Rebuild(); err != nil {
					t.Fatalf("%s: rebuild: %v", stag, err)
				}
			}

			// Every mutation is followed by oracle-checked queries: a hot
			// repeat, a parameter variant, sometimes a filtered or exact
			// search, sometimes a batch.
			q := queries[rng.Intn(3)] // zipf-ish: favor the hottest three
			req := SearchRequest{Vector: q, K: 5 + rng.Intn(6), NProbe: 4 + rng.Intn(8)}
			switch rng.Intn(5) {
			case 0:
				req.Filters = []Filter{Ge("grp", int64(rng.Intn(4)))}
			case 1:
				req.Exact = true
			case 2:
				if qt != QuantNone {
					req.RerankFactor = 2 + rng.Intn(4)
				}
			}
			oracleCheck(t, db, stag, req)
			if rng.Intn(4) == 0 {
				oracleBatchCheck(t, db, stag, BatchSearchRequest{
					Vectors: [][]float32{queries[rng.Intn(len(queries))], queries[rng.Intn(3)]},
					K:       8, NProbe: 6,
				})
			}
		}
	}

	cs := cacheStatsOfStore(t, db)
	if cs.Hits == 0 {
		t.Fatalf("oracle finished without a single cache hit: %+v", cs)
	}
	if cs.Invalidations == 0 {
		t.Fatalf("oracle finished without a single invalidation (mutations did not move the generation?): %+v", cs)
	}
	t.Logf("cache stats: %+v (hit ratio %.2f)", cs, cs.HitRatio())
}

// TestCacheStalenessOracle is the battery's core: across the four
// configurations it runs well over 200 seeded interleavings (~260 at full
// count), each interleaving a randomized op schedule with byte-identical
// cached-vs-oracle comparison after every mutation.
func TestCacheStalenessOracle(t *testing.T) {
	base := cacheOracleSeed(t)
	schedules := 65
	if testing.Short() {
		schedules = 8
	}
	for i, cfg := range []struct {
		name   string
		quant  Quantization
		shards int
	}{
		{"float32/single", QuantNone, 0},
		{"float32/sharded", QuantNone, 3},
		{"sq8/single", QuantSQ8, 0},
		{"sq8/sharded", QuantSQ8, 3},
		{"sq4/single", QuantSQ4, 0},
		{"sq4/sharded", QuantSQ4, 3},
	} {
		cfg, i := cfg, i
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			runCacheOracle(t, cfg.quant, cfg.shards, base+int64(i), schedules)
		})
	}
}

// TestCacheRaceHammer runs hot repeated searches, batched searches, point
// writes and auto-maintenance concurrently on a 4-shard cached database.
// Run under -race in CI. Asserts the hit counter advances, the sharded
// invariants hold afterwards, and the quiesced cache still agrees with the
// oracle.
func TestCacheRaceHammer(t *testing.T) {
	dim := shardTestDim
	sdb := openShardedTest(t, filepath.Join(t.TempDir(), "hammer.d"), Options{
		Dim:                 dim,
		Shards:              4,
		TargetPartitionSize: 24,
		Seed:                42,
		AutoMaintain:        true,
		MaintainInterval:    5 * time.Millisecond,
		ResultCache:         ResultCacheOptions{Enabled: true},
	})
	vecs := clusteredVecs(99, 400, dim, 6)
	items := make([]Item, 300)
	for i := range items {
		items[i] = Item{ID: fmt.Sprintf("h%04d", i), Vector: vecs[i]}
	}
	if err := sdb.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if _, err := sdb.Rebuild(); err != nil {
		t.Fatal(err)
	}

	duration := 1500 * time.Millisecond
	if testing.Short() {
		duration = 400 * time.Millisecond
	}
	deadline := time.Now().Add(duration)
	hot := clusteredVecs(7, 4, dim, 6)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// Hot searchers: the same four queries over and over — the cache's
	// bread and butter, racing the writers' invalidations.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				q := hot[(g+i)%len(hot)]
				// Back-to-back repeats of the same query: unless a write
				// lands in the sub-millisecond gap, the second serves from
				// the cache — the hot-repeat pattern the cache exists for.
				for r := 0; r < 2; r++ {
					if _, err := sdb.Search(SearchRequest{Vector: q, K: 10, NProbe: 8}); err != nil {
						fail(fmt.Errorf("searcher %d: %w", g, err))
						return
					}
				}
				if i%16 == 0 {
					if _, err := sdb.BatchSearch(BatchSearchRequest{Vectors: hot[:2], K: 10, NProbe: 8}); err != nil {
						fail(fmt.Errorf("batcher %d: %w", g, err))
						return
					}
				}
			}
		}(g)
	}
	// Writer: upserts and deletes keep every shard's generation moving, in
	// bursts with quiet windows between them. The bursts hammer the
	// invalidation and partial-reuse paths; the quiet windows guarantee
	// hot repeats can actually hit, however much -race slows each search
	// (an unthrottled writer would invalidate between every pair of
	// searches and prove only the invalidation path).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 300; time.Now().Before(deadline); {
			for b := 0; b < 8 && time.Now().Before(deadline); b++ {
				if err := sdb.Upsert(Item{ID: fmt.Sprintf("h%04d", i%400), Vector: vecs[i%400]}); err != nil {
					fail(fmt.Errorf("writer: %w", err))
					return
				}
				i++
				if rng.Intn(4) == 0 {
					if err := sdb.DeleteBatch([]string{fmt.Sprintf("h%04d", rng.Intn(400))}); err != nil {
						fail(fmt.Errorf("deleter: %w", err))
						return
					}
				}
				time.Sleep(time.Millisecond)
			}
			time.Sleep(40 * time.Millisecond)
		}
	}()
	// Stats poller (reads the cache counters concurrently).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			if _, err := sdb.Stats(); err != nil {
				fail(fmt.Errorf("stats: %w", err))
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}

	cs := sdb.ResultCacheStats()
	if cs.Hits == 0 {
		t.Fatalf("hammer finished without a cache hit: %+v", cs)
	}
	if err := sdb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Quiesced: the cache must agree with the oracle on every hot query.
	for i, q := range hot {
		oracleCheck(t, sdb, fmt.Sprintf("post-hammer q%d", i), SearchRequest{Vector: q, K: 10, NProbe: 8})
	}
	t.Logf("hammer cache stats: %+v", cs)
}

// TestShardedCachePartialReuse pins the tentpole's scatter-skipping
// behavior: after a point write that touches exactly one shard, the repeat
// of a cached query re-scans only that shard and reuses the other three
// shards' cached candidates — and still matches the oracle exactly.
func TestShardedCachePartialReuse(t *testing.T) {
	dim := shardTestDim
	sdb := openShardedTest(t, filepath.Join(t.TempDir(), "partial.d"), Options{
		Dim:                 dim,
		Shards:              4,
		TargetPartitionSize: 24,
		Seed:                7,
		ResultCache:         ResultCacheOptions{Enabled: true},
	})
	vecs := clusteredVecs(5, 240, dim, 5)
	items := make([]Item, 240)
	for i := range items {
		items[i] = Item{ID: fmt.Sprintf("p%04d", i), Vector: vecs[i]}
	}
	if err := sdb.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if _, err := sdb.Rebuild(); err != nil {
		t.Fatal(err)
	}

	q := clusteredVecs(11, 1, dim, 5)[0]
	req := SearchRequest{Vector: q, K: 10, NProbe: 8}
	if _, err := sdb.Search(req); err != nil { // fill
		t.Fatal(err)
	}
	if _, err := sdb.Search(req); err != nil { // hit
		t.Fatal(err)
	}
	cs := sdb.ResultCacheStats()
	if cs.Hits != 1 || cs.SkippedShardScans != 0 {
		t.Fatalf("warmup stats: %+v; want exactly 1 hit, 0 skipped scans", cs)
	}

	// One point write moves exactly one shard's generation.
	if err := sdb.Upsert(Item{ID: "solo", Vector: vecs[0]}); err != nil {
		t.Fatal(err)
	}
	oracleCheck(t, sdb, "after point write", req)
	cs = sdb.ResultCacheStats()
	if cs.Invalidations == 0 {
		t.Fatalf("point write did not invalidate: %+v", cs)
	}
	if want := uint64(sdb.Shards() - 1); cs.SkippedShardScans != want {
		t.Fatalf("partial reuse skipped %d shard scans; want %d (stats %+v)", cs.SkippedShardScans, want, cs)
	}

	// Unchanged since the re-fill: full hit again.
	before := cs.Hits
	if _, err := sdb.Search(req); err != nil {
		t.Fatal(err)
	}
	if cs = sdb.ResultCacheStats(); cs.Hits <= before {
		t.Fatalf("repeat after revalidation did not hit: %+v", cs)
	}
}

// TestShardedSnapshotDoesNotPolluteCache: a long-lived snapshot pinned to
// an old horizon may read through the cache but must never store entries —
// an entry stamped with old generations would displace the entry live
// traffic still needs.
func TestShardedSnapshotDoesNotPolluteCache(t *testing.T) {
	dim := shardTestDim
	sdb := openShardedTest(t, filepath.Join(t.TempDir(), "snappollute.d"), Options{
		Dim: dim, Shards: 2, TargetPartitionSize: 24, Seed: 13,
		ResultCache: ResultCacheOptions{Enabled: true},
	})
	vecs := clusteredVecs(21, 150, dim, 4)
	items := make([]Item, 150)
	for i := range items {
		items[i] = Item{ID: fmt.Sprintf("s%04d", i), Vector: vecs[i]}
	}
	if err := sdb.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	if _, err := sdb.Rebuild(); err != nil {
		t.Fatal(err)
	}

	// Pin an old horizon, then advance the live database.
	snap, err := sdb.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if err := sdb.Upsert(Item{ID: "newer", Vector: vecs[1]}); err != nil {
		t.Fatal(err)
	}

	// Live search caches an entry at the current generations.
	q := clusteredVecs(22, 1, dim, 4)[0]
	req := SearchRequest{Vector: q, K: 10, NProbe: 8}
	if _, err := sdb.Search(req); err != nil {
		t.Fatal(err)
	}
	// The old-horizon snapshot runs the same query: it must compute (its
	// generations don't match the entry) without overwriting the entry.
	snapResp, err := snap.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	// The live repeat must still be a full hit on the live entry.
	hitsBefore := sdb.ResultCacheStats().Hits
	liveResp, err := sdb.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if cs := sdb.ResultCacheStats(); cs.Hits != hitsBefore+1 {
		t.Fatalf("live repeat after snapshot search did not hit (snapshot polluted the cache): %+v", cs)
	}
	// And the snapshot's answer reflects its own horizon, not the cache's:
	// "newer" was upserted after the snapshot was pinned.
	for _, r := range snapResp.Results {
		if r.ID == "newer" {
			t.Fatal("snapshot search observed a post-snapshot write")
		}
	}
	_ = liveResp
}

// TestDropCachesClearsResultCache is the regression test for the
// DropCaches fix: cold-start benchmarks call DropCaches to measure true
// cold paths, so it must clear the result cache on both database flavors.
func TestDropCachesClearsResultCache(t *testing.T) {
	dim := shardTestDim
	vecs := clusteredVecs(3, 120, dim, 4)
	items := make([]Item, 120)
	for i := range items {
		items[i] = Item{ID: fmt.Sprintf("d%04d", i), Vector: vecs[i]}
	}
	q := clusteredVecs(4, 1, dim, 4)[0]
	req := SearchRequest{Vector: q, K: 10, NProbe: 8}

	check := func(t *testing.T, db Store) {
		t.Helper()
		if err := db.UpsertBatch(items); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Rebuild(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := db.Search(req); err != nil {
				t.Fatal(err)
			}
		}
		cs := cacheStatsOfStore(t, db)
		if cs.Entries == 0 || cs.Hits == 0 {
			t.Fatalf("warmup left no cached entry: %+v", cs)
		}
		db.DropCaches()
		cs = cacheStatsOfStore(t, db)
		if cs.Entries != 0 || cs.Bytes != 0 {
			t.Fatalf("DropCaches left %d entries, %d bytes in the result cache", cs.Entries, cs.Bytes)
		}
		missesBefore := cs.Misses
		if _, err := db.Search(req); err != nil {
			t.Fatal(err)
		}
		if cs = cacheStatsOfStore(t, db); cs.Misses != missesBefore+1 {
			t.Fatalf("post-drop search should miss (cold), stats %+v", cs)
		}
	}

	t.Run("single", func(t *testing.T) {
		db, err := Open(filepath.Join(t.TempDir(), "drop.mnn"), Options{
			Dim: dim, TargetPartitionSize: 24, Seed: 1,
			ResultCache: ResultCacheOptions{Enabled: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		check(t, db)
	})
	t.Run("sharded", func(t *testing.T) {
		sdb := openShardedTest(t, filepath.Join(t.TempDir(), "drop.d"), Options{
			Dim: dim, Shards: 3, TargetPartitionSize: 24, Seed: 1,
			ResultCache: ResultCacheOptions{Enabled: true},
		})
		check(t, sdb)
	})
}

// TestCacheEnvOverride proves the MICRONN_TEST_CACHE=1 matrix leg reaches
// databases opened without a configured cache — and that the per-shard
// stores under a router do NOT each grow one.
func TestCacheEnvOverride(t *testing.T) {
	t.Setenv(EnvCacheVar, "1")
	dim := shardTestDim
	vecs := clusteredVecs(8, 60, dim, 3)
	items := make([]Item, 60)
	for i := range items {
		items[i] = Item{ID: fmt.Sprintf("e%04d", i), Vector: vecs[i]}
	}
	req := SearchRequest{Vector: vecs[0], K: 5, NProbe: 4}

	db, err := Open(filepath.Join(t.TempDir(), "env.mnn"), Options{Dim: dim, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := db.Search(req); err != nil {
			t.Fatal(err)
		}
	}
	cs := db.ResultCacheStats()
	if !cs.Enabled || cs.Hits == 0 {
		t.Fatalf("env override did not enable the single-store cache: %+v", cs)
	}

	sdb := openShardedTest(t, filepath.Join(t.TempDir(), "env.d"), Options{Dim: dim, Shards: 2, Seed: 1})
	if err := sdb.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sdb.Search(req); err != nil {
			t.Fatal(err)
		}
	}
	if cs := sdb.ResultCacheStats(); !cs.Enabled || cs.Hits == 0 {
		t.Fatalf("env override did not enable the router cache: %+v", cs)
	}
	for i := 0; i < sdb.Shards(); i++ {
		if sdb.Shard(i).cache != nil {
			t.Fatalf("shard %d grew its own cache under the router", i)
		}
	}
}
