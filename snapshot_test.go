package micronn

import (
	"errors"
	"fmt"
	"testing"
)

func TestSnapshotPinsState(t *testing.T) {
	db := openTest(t, Options{Dim: 4, TargetPartitionSize: 10, Seed: 9})
	if err := db.Upsert(Item{ID: "v0", Vector: []float32{1, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}

	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	// Mutate heavily after the snapshot: insert, delete, rebuild.
	for i := 1; i <= 50; i++ {
		if err := db.Upsert(Item{ID: fmt.Sprintf("v%d", i), Vector: []float32{float32(i), 0, 0, 0}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete("v0"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}

	// The snapshot still sees exactly one vector: the deleted v0.
	resp, err := snap.Search(SearchRequest{Vector: []float32{1, 0, 0, 0}, K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].ID != "v0" {
		t.Errorf("snapshot search = %+v, want only v0", resp.Results)
	}
	item, err := snap.Get("v0")
	if err != nil {
		t.Fatalf("snapshot Get(v0): %v", err)
	}
	if item.Vector[0] != 1 {
		t.Errorf("snapshot vector = %v", item.Vector)
	}
	st, err := snap.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVectors != 1 {
		t.Errorf("snapshot NumVectors = %d, want 1", st.NumVectors)
	}

	// Batch search through the snapshot agrees.
	bresp, err := snap.BatchSearch(BatchSearchRequest{Vectors: [][]float32{{1, 0, 0, 0}}, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(bresp.Results[0]) != 1 || bresp.Results[0][0].ID != "v0" {
		t.Errorf("snapshot batch = %+v", bresp.Results)
	}

	// Live view sees the new world.
	live, err := db.Search(SearchRequest{Vector: []float32{1, 0, 0, 0}, K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Results) != 50 {
		t.Errorf("live search = %d results, want 50", len(live.Results))
	}
	for _, r := range live.Results {
		if r.ID == "v0" {
			t.Error("deleted v0 visible in live search")
		}
	}
}

func TestSnapshotAfterCloseIsUnusable(t *testing.T) {
	db := openTest(t, Options{Dim: 4})
	if err := db.Upsert(Item{ID: "a", Vector: []float32{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Close()
	snap.Close() // idempotent
	if _, err := snap.Search(SearchRequest{Vector: []float32{1, 2, 3, 4}, K: 1}); err == nil {
		t.Error("search on closed snapshot should fail")
	}
}

func TestSnapshotGetMissing(t *testing.T) {
	db := openTest(t, Options{Dim: 4})
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if _, err := snap.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) = %v", err)
	}
}
