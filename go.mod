module micronn

go 1.24
