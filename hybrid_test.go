package micronn

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// hybridVocab is a small tag vocabulary with a skewed frequency profile so
// BM25's IDF actually discriminates.
var hybridVocab = []string{
	"cat", "dog", "bird", "yarn", "fetch", "park", "sunny", "indoor",
	"outdoor", "golden", "fluffy", "tiny", "sleepy", "playful", "rare",
}

// hybridTags deterministically assigns each item a few vocabulary tags.
func hybridTags(rng *rand.Rand) string {
	n := 1 + rng.Intn(4)
	toks := make([]string, n)
	for i := range toks {
		// Zipf-ish skew: low indices picked far more often.
		toks[i] = hybridVocab[rng.Intn(len(hybridVocab)-rng.Intn(len(hybridVocab)))]
	}
	return strings.Join(toks, " ")
}

// hybridItems builds a deterministic corpus of vectors + tag strings.
func hybridItems(seed int64, n, dim int) []Item {
	rng := rand.New(rand.NewSource(seed))
	vecs := randomVecs(seed+1, n, dim)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			ID:         fmt.Sprintf("v%07d", i),
			Vector:     vecs[i],
			Attributes: map[string]any{"tags": hybridTags(rng)},
		}
	}
	return items
}

func hybridTestOpts(dim int) Options {
	return Options{
		Dim:        dim,
		Attributes: []AttributeDef{{Name: "tags", Type: AttrText, FullText: true}},
	}
}

// TestHybridEmptyTextEqualsSearch: a hybrid request without Text must return
// exactly Search's results (ids and distances), wrapped in single-leg form.
func TestHybridEmptyTextEqualsSearch(t *testing.T) {
	db := openTest(t, hybridTestOpts(8))
	if err := db.UpsertBatch(hybridItems(11, 300, 8)); err != nil {
		t.Fatal(err)
	}
	q := randomVecs(99, 1, 8)[0]
	sr, err := db.Search(SearchRequest{Vector: q, K: 12})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := db.HybridSearch(HybridRequest{Vector: q, K: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(hr.Results) != len(sr.Results) {
		t.Fatalf("hybrid returned %d results, search %d", len(hr.Results), len(sr.Results))
	}
	for i, r := range hr.Results {
		if r.ID != sr.Results[i].ID || r.Distance != sr.Results[i].Distance {
			t.Errorf("result %d: hybrid (%s, %g) != search (%s, %g)",
				i, r.ID, r.Distance, sr.Results[i].ID, sr.Results[i].Distance)
		}
		if r.VectorRank != i+1 || r.TextRank != 0 || r.TextScore != 0 {
			t.Errorf("result %d: leg annotations = %+v, want pure vector", i, r)
		}
	}
	if hr.Plan != sr.Plan {
		t.Errorf("plan mismatch: %+v vs %+v", hr.Plan, sr.Plan)
	}
}

// TestHybridFusionBasics: fused results honor K, are sorted by descending
// score with ascending-id ties, and lexical matches actually surface.
func TestHybridFusionBasics(t *testing.T) {
	db := openTest(t, hybridTestOpts(8))
	items := hybridItems(23, 400, 8)
	// Give one document a token nothing else has: querying it lexically
	// must surface that document even if the vector leg never would.
	items[371].Attributes["tags"] = "unicorn " + items[371].Attributes["tags"].(string)
	if err := db.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	q := randomVecs(7, 1, 8)[0]
	resp, err := db.HybridSearch(HybridRequest{Vector: q, Text: "unicorn rare", K: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 || len(resp.Results) > 15 {
		t.Fatalf("got %d results, want 1..15", len(resp.Results))
	}
	found := false
	for i, r := range resp.Results {
		if r.ID == items[371].ID {
			found = true
			if r.TextRank == 0 || r.TextScore <= 0 {
				t.Errorf("unicorn doc missing lexical annotations: %+v", r)
			}
		}
		if i > 0 {
			prev := resp.Results[i-1]
			if r.Score > prev.Score || (r.Score == prev.Score && r.ID < prev.ID) {
				t.Errorf("results out of order at %d: %+v after %+v", i, r, prev)
			}
		}
		if r.VectorRank == 0 && r.TextRank == 0 {
			t.Errorf("result %d in neither leg: %+v", i, r)
		}
	}
	if !found {
		t.Error("lexically unique document did not surface in fused results")
	}
}

// TestHybridValidation covers the request-normalization error surface.
func TestHybridValidation(t *testing.T) {
	db := openTest(t, hybridTestOpts(8))
	q := make([]float32, 8)
	cases := []struct {
		name string
		req  HybridRequest
		want error
	}{
		{"negative-k", HybridRequest{Vector: q, K: -1}, ErrBadRequest},
		{"negative-fusionk", HybridRequest{Vector: q, Text: "cat", FusionK: -2}, ErrBadRequest},
		{"negative-weight", HybridRequest{Vector: q, Text: "cat", Weighted: true, VectorWeight: -1}, ErrBadRequest},
		{"dim-mismatch", HybridRequest{Vector: make([]float32, 5)}, ErrDimMismatch},
		{"unknown-textcol", HybridRequest{Vector: q, Text: "cat", TextCol: "nope"}, ErrBadRequest},
	}
	for _, c := range cases {
		if _, err := db.HybridSearch(c.req); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	// A store without any FullText attribute must reject lexical queries.
	plain := openTest(t, Options{Dim: 8})
	if err := plain.Upsert(Item{ID: "a", Vector: q}); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.HybridSearch(HybridRequest{Vector: q, Text: "cat"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("no-fts store: err = %v, want ErrBadRequest", err)
	}
	// ...but a pure vector request on the same store is fine.
	if _, err := plain.HybridSearch(HybridRequest{Vector: q}); err != nil {
		t.Errorf("no-fts store, empty text: %v", err)
	}
}

// TestHybridShardedEqualsSingle loads the same corpus into a single store
// and a 3-shard store and requires identical fused rankings — ids, fused
// scores, BM25 scores, distances and leg ranks — across quantization
// schemes. The vector leg runs Exact so per-shard probe-splitting cannot
// introduce recall differences; lexical determinism is what's under test
// (global df/N aggregation plus asset-ordered tie-breaks).
func TestHybridShardedEqualsSingle(t *testing.T) {
	for _, quant := range []Quantization{QuantNone, QuantSQ8, QuantSQ4} {
		t.Run(fmt.Sprintf("quant-%v", quant), func(t *testing.T) {
			opts := hybridTestOpts(8)
			opts.Quantization = quant
			single := openTest(t, opts)
			sopts := opts
			sopts.Shards = 3
			sharded := openShardedTest(t, filepath.Join(t.TempDir(), "shards"), sopts)

			items := hybridItems(31, 500, 8)
			if err := single.UpsertBatch(items); err != nil {
				t.Fatal(err)
			}
			if err := sharded.UpsertBatch(items); err != nil {
				t.Fatal(err)
			}
			queries := []HybridRequest{
				{Text: "cat yarn", K: 10, Exact: true},
				{Text: "rare sunny park", K: 25, Exact: true},
				{Text: "dog", K: 7, Exact: true},
				{Text: "absenttoken", K: 5, Exact: true},
				{Text: "fluffy golden fetch", K: 10, Exact: true, Weighted: true},
				{Text: "cat", K: 10, Exact: true, Weighted: true, VectorWeight: 0, TextWeight: 1},
			}
			vecs := randomVecs(55, len(queries), 8)
			for qi, req := range queries {
				req.Vector = vecs[qi]
				a, err := single.HybridSearch(req)
				if err != nil {
					t.Fatal(err)
				}
				b, err := sharded.HybridSearch(req)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a.Results, b.Results) {
					t.Errorf("query %d (%q): single and sharded rankings differ\nsingle:  %+v\nsharded: %+v",
						qi, req.Text, a.Results, b.Results)
				}
			}
		})
	}
}

// TestHybridCacheConsistency is the staleness oracle: a cached store and an
// uncached recomputation must agree byte-for-byte at every point of an
// interleaved write/query history, and repeated queries must be served from
// the cache without drifting.
func TestHybridCacheConsistency(t *testing.T) {
	opts := hybridTestOpts(8)
	opts.ResultCache = ResultCacheOptions{Enabled: true}
	db := openTest(t, opts)
	items := hybridItems(47, 300, 8)
	if err := db.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	queries := []string{"cat yarn", "dog park", "rare", "sunny fluffy fetch"}
	vecs := randomVecs(66, len(queries), 8)
	next := len(items)
	for round := 0; round < 8; round++ {
		for qi, text := range queries {
			req := HybridRequest{Vector: vecs[qi], Text: text, K: 10}
			cached1, err := db.HybridSearch(req)
			if err != nil {
				t.Fatal(err)
			}
			cached2, err := db.HybridSearch(req)
			if err != nil {
				t.Fatal(err)
			}
			req.NoCache = true
			fresh, err := db.HybridSearch(req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cached1, fresh) {
				t.Fatalf("round %d query %q: cached response diverged from uncached\ncached: %+v\nfresh:  %+v",
					round, text, cached1, fresh)
			}
			if !reflect.DeepEqual(cached1, cached2) {
				t.Fatalf("round %d query %q: repeated cached responses differ", round, text)
			}
		}
		// Mutate between rounds: new docs with query-relevant tags, plus a
		// deletion, so every cached entry's generation moves.
		batch := hybridItems(int64(100+round), 5, 8)
		for i := range batch {
			batch[i].ID = fmt.Sprintf("n%07d", next)
			next++
			batch[i].Attributes["tags"] = queries[rng.Intn(len(queries))]
		}
		if err := db.UpsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := db.Delete(items[rng.Intn(len(items))].ID); err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatal(err)
		}
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits == 0 {
		t.Error("expected cache hits from repeated hybrid queries")
	}
	if st.HybridSearches == 0 {
		t.Error("HybridSearches counter not bumped")
	}
}

// TestHybridShardedCacheConsistency runs the same oracle against a sharded
// store with the router-level cache enabled.
func TestHybridShardedCacheConsistency(t *testing.T) {
	opts := hybridTestOpts(8)
	opts.Shards = 3
	opts.ResultCache = ResultCacheOptions{Enabled: true}
	db := openShardedTest(t, filepath.Join(t.TempDir(), "shards"), opts)
	items := hybridItems(53, 300, 8)
	if err := db.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	vecs := randomVecs(77, 3, 8)
	texts := []string{"cat yarn", "dog", "rare park"}
	for round := 0; round < 5; round++ {
		for qi, text := range texts {
			req := HybridRequest{Vector: vecs[qi], Text: text, K: 10}
			cached, err := db.HybridSearch(req)
			if err != nil {
				t.Fatal(err)
			}
			req.NoCache = true
			fresh, err := db.HybridSearch(req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cached, fresh) {
				t.Fatalf("round %d query %q: sharded cached response diverged\ncached: %+v\nfresh:  %+v",
					round, text, cached, fresh)
			}
		}
		extra := hybridItems(int64(200+round), 4, 8)
		for i := range extra {
			extra[i].ID = fmt.Sprintf("m%03d%04d", round, i)
		}
		if err := db.UpsertBatch(extra); err != nil {
			t.Fatal(err)
		}
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.HybridSearches == 0 {
		t.Error("sharded HybridSearches counter not bumped")
	}
}

// TestHybridSnapshot: a snapshot's hybrid results must reflect the pinned
// state, not later writes — on both topologies.
func TestHybridSnapshot(t *testing.T) {
	db := openTest(t, hybridTestOpts(8))
	items := hybridItems(61, 200, 8)
	if err := db.UpsertBatch(items); err != nil {
		t.Fatal(err)
	}
	q := randomVecs(88, 1, 8)[0]
	req := HybridRequest{Vector: q, Text: "cat", K: 10}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	before, err := snap.HybridSearch(req)
	if err != nil {
		t.Fatal(err)
	}
	// Write a doc that would dominate the lexical leg.
	err = db.Upsert(Item{ID: "zzz", Vector: q, Attributes: map[string]any{"tags": "cat cat-adjacent"}})
	if err != nil {
		t.Fatal(err)
	}
	after, err := snap.HybridSearch(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Error("snapshot hybrid results changed after a later write")
	}
	live, err := db.HybridSearch(req)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range live.Results {
		if r.ID == "zzz" {
			found = true
		}
	}
	if !found {
		t.Error("live hybrid query should see the new dominant doc")
	}
}

// TestHybridWeightedSingleLeg: weighted mode with one zero weight reduces
// to a pure single-leg ranking (the bench harness measures lexical-only
// recall this way).
func TestHybridWeightedSingleLeg(t *testing.T) {
	db := openTest(t, hybridTestOpts(8))
	if err := db.UpsertBatch(hybridItems(71, 300, 8)); err != nil {
		t.Fatal(err)
	}
	q := randomVecs(5, 1, 8)[0]
	lex, err := db.HybridSearch(HybridRequest{
		Vector: q, Text: "cat yarn", K: 10,
		Weighted: true, VectorWeight: 0, TextWeight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(lex.Results); i++ {
		if lex.Results[i].TextScore > lex.Results[i-1].TextScore {
			t.Errorf("lexical-only ranking not by BM25 at %d: %+v after %+v",
				i, lex.Results[i], lex.Results[i-1])
		}
	}
	for _, r := range lex.Results {
		if r.TextRank == 0 && r.Score > 0 {
			t.Errorf("vector-only doc scored nonzero in lexical-only mode: %+v", r)
		}
	}
}
