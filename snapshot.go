package micronn

import (
	"micronn/internal/storage"
	"micronn/internal/vec"
)

// Snapshot is a read-only view of the database pinned to one commit
// horizon. Every query through a Snapshot observes exactly the same state,
// regardless of concurrent writes, flushes or rebuilds — the paper's §2.1
// consistency requirement ("each reader should see a consistent state of
// the index at all times, including reading concurrently with writes and
// index maintenance operations").
//
// Snapshots hold WAL segments alive and can delay checkpoints, so close
// them promptly. A Snapshot is safe for concurrent use.
type Snapshot struct {
	db *DB
	rt *storage.ReadTxn
}

// Snapshot opens a consistent read view. Callers must Close it.
func (db *DB) Snapshot() (*Snapshot, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	rt, err := db.store.BeginRead()
	if err != nil {
		return nil, err
	}
	return &Snapshot{db: db, rt: rt}, nil
}

// Close releases the snapshot. Idempotent.
func (s *Snapshot) Close() {
	s.rt.Close()
}

// Search runs a query against the pinned state (same semantics as
// DB.Search).
func (s *Snapshot) Search(req SearchRequest) (*SearchResponse, error) {
	if err := s.db.normalizeSearch(&req); err != nil {
		return nil, err
	}
	return s.db.searchAt(s.rt, req)
}

// BatchSearch runs a query batch against the pinned state.
func (s *Snapshot) BatchSearch(req BatchSearchRequest) (*BatchSearchResponse, error) {
	if err := s.db.normalizeBatchSearch(&req); err != nil {
		return nil, err
	}
	if len(req.Vectors) == 0 {
		return &BatchSearchResponse{}, nil
	}
	dim := s.db.ix.Config().Dim
	queries := vec.NewMatrix(len(req.Vectors), dim)
	for i, q := range req.Vectors {
		queries.SetRow(i, q)
	}
	return s.db.batchSearchAt(s.rt, queries, req)
}

// Get returns the item as of the snapshot.
func (s *Snapshot) Get(id string) (*Item, error) {
	return getItem(s.db.ix, s.rt, id)
}

// Stats returns index counters as of the snapshot.
func (s *Snapshot) Stats() (Stats, error) {
	var out Stats
	st, err := s.db.ix.Stats(s.rt)
	if err != nil {
		return out, err
	}
	out.NumVectors = st.NumVectors
	out.DeltaCount = st.DeltaCount
	out.NumPartitions = st.NumPartitions
	out.AvgPartitionSize = st.AvgPartitionSize
	return out, nil
}
